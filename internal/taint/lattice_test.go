package taint

import (
	"testing"
	"testing/quick"
)

func TestJoinTable(t *testing.T) {
	t1, t2 := Single(1), Single(2)
	tests := []struct {
		name string
		a, b Label
		want Label
	}{
		{"bottom-bottom", Bottom(), Bottom(), Bottom()},
		{"bottom-single", Bottom(), t1, t1},
		{"single-bottom", t1, Bottom(), t1},
		{"bottom-top", Bottom(), Top(), Top()},
		{"top-bottom", Top(), Bottom(), Top()},
		{"same-single", t1, t1, t1},
		{"diff-single", t1, t2, Top()},
		{"single-top", t1, Top(), Top()},
		{"top-single", Top(), t2, Top()},
		{"top-top", Top(), Top(), Top()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Join(tt.b); !got.Equal(tt.want) {
				t.Errorf("Join(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestLabelPredicates(t *testing.T) {
	if !Bottom().IsBottom() || Bottom().IsTop() || Bottom().IsSingle() {
		t.Error("Bottom predicates wrong")
	}
	if Top().IsBottom() || !Top().IsTop() || Top().IsSingle() {
		t.Error("Top predicates wrong")
	}
	l := Single(7)
	if l.IsBottom() || l.IsTop() || !l.IsSingle() {
		t.Error("Single predicates wrong")
	}
	tag, ok := l.Tag()
	if !ok || tag != 7 {
		t.Errorf("Tag() = %v, %v; want 7, true", tag, ok)
	}
	if _, ok := Top().Tag(); ok {
		t.Error("Top().Tag() should not be ok")
	}
	if _, ok := Bottom().Tag(); ok {
		t.Error("Bottom().Tag() should not be ok")
	}
}

func TestZeroValueIsBottom(t *testing.T) {
	var l Label
	if !l.IsBottom() {
		t.Error("zero Label must be ⊥")
	}
}

func TestLessOrEqual(t *testing.T) {
	t1, t2 := Single(1), Single(2)
	tests := []struct {
		a, b Label
		want bool
	}{
		{Bottom(), Bottom(), true},
		{Bottom(), t1, true},
		{Bottom(), Top(), true},
		{t1, t1, true},
		{t1, t2, false},
		{t1, Top(), true},
		{Top(), t1, false},
		{Top(), Top(), true},
		{t1, Bottom(), false},
		{Top(), Bottom(), false},
	}
	for _, tt := range tests {
		if got := tt.a.LessOrEqual(tt.b); got != tt.want {
			t.Errorf("%v ⊑ %v = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestString(t *testing.T) {
	if Bottom().String() != "⊥" {
		t.Errorf("Bottom().String() = %q", Bottom().String())
	}
	if Top().String() != "⊤" {
		t.Errorf("Top().String() = %q", Top().String())
	}
	if Single(3).String() != "t3" {
		t.Errorf("Single(3).String() = %q", Single(3).String())
	}
}

func TestFromTags(t *testing.T) {
	tests := []struct {
		name string
		tags []Tag
		want Label
	}{
		{"none", nil, Bottom()},
		{"one", []Tag{4}, Single(4)},
		{"same-twice", []Tag{4, 4}, Single(4)},
		{"two-distinct", []Tag{1, 2}, Top()},
		{"many", []Tag{1, 1, 2, 3}, Top()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FromTags(tt.tags); !got.Equal(tt.want) {
				t.Errorf("FromTags(%v) = %v, want %v", tt.tags, got, tt.want)
			}
		})
	}
}

func TestAllocator(t *testing.T) {
	var a Allocator
	if a.Count() != 0 {
		t.Fatalf("fresh allocator Count = %d", a.Count())
	}
	first := a.Fresh()
	second := a.Fresh()
	if first == second {
		t.Error("Fresh returned duplicate tags")
	}
	if first != 1 || second != 2 {
		t.Errorf("tags = %v, %v; want t1, t2", first, second)
	}
	if a.Count() != 2 {
		t.Errorf("Count = %d, want 2", a.Count())
	}
}

func TestPolicyTableI(t *testing.T) {
	var alloc Allocator
	p := NewPolicy(&alloc)

	if got := p.Const(); !got.IsBottom() {
		t.Errorf("P_const() = %v, want ⊥", got)
	}
	s1 := p.GetSecret()
	s2 := p.GetSecret()
	if !s1.IsSingle() || !s2.IsSingle() || s1.Equal(s2) {
		t.Errorf("P_get_secret must return distinct single tags, got %v, %v", s1, s2)
	}
	if got := p.Unop(s1); !got.Equal(s1) {
		t.Errorf("P_unop(t) = %v, want %v", got, s1)
	}
	if got := p.Assign(s1); !got.Equal(s1) {
		t.Errorf("P_assign(t) = %v, want %v", got, s1)
	}
	if got := p.Binop(s1, s2); !got.IsTop() {
		t.Errorf("P_binop(t1,t2) = %v, want ⊤", got)
	}
	if got := p.Binop(s1, Bottom()); !got.Equal(s1) {
		t.Errorf("P_binop(t1,⊥) = %v, want t1", got)
	}
	if got := p.Cond(s1, Bottom()); !got.Equal(s1) {
		t.Errorf("P_cond(t1,⊥) = %v, want t1", got)
	}
	if got := p.Cond(s1, s2); !got.IsTop() {
		t.Errorf("P_cond(t1,t2) = %v, want ⊤", got)
	}
}

func TestMap(t *testing.T) {
	m := NewMap()
	if !m.Get("x").IsBottom() {
		t.Error("unknown variable must be ⊥")
	}
	m.Set("x", Single(1))
	if !m.Get("x").Equal(Single(1)) {
		t.Error("Set/Get mismatch")
	}
	m.SetPi(Top())
	if !m.Pi().IsTop() {
		t.Error("SetPi/Pi mismatch")
	}
	c := m.Clone()
	c.Set("x", Top())
	if !m.Get("x").Equal(Single(1)) {
		t.Error("Clone must be independent")
	}
	if c.Len() != m.Len() {
		t.Errorf("clone Len %d != %d", c.Len(), m.Len())
	}
	entries := m.Entries()
	if len(entries) != 2 {
		t.Errorf("Entries len = %d, want 2", len(entries))
	}
	entries["x"] = Top()
	if !m.Get("x").Equal(Single(1)) {
		t.Error("Entries must return a copy")
	}
}

// genLabel maps an arbitrary byte onto a lattice element so testing/quick
// can explore the whole (small) label space.
func genLabel(b byte) Label {
	switch b % 5 {
	case 0:
		return Bottom()
	case 1:
		return Top()
	default:
		return Single(Tag(b%3 + 1))
	}
}

func TestJoinPropertyCommutative(t *testing.T) {
	f := func(a, b byte) bool {
		x, y := genLabel(a), genLabel(b)
		return x.Join(y).Equal(y.Join(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinPropertyAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		x, y, z := genLabel(a), genLabel(b), genLabel(c)
		return x.Join(y).Join(z).Equal(x.Join(y.Join(z)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinPropertyIdempotent(t *testing.T) {
	f := func(a byte) bool {
		x := genLabel(a)
		return x.Join(x).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinPropertyUpperBound(t *testing.T) {
	f := func(a, b byte) bool {
		x, y := genLabel(a), genLabel(b)
		j := x.Join(y)
		return x.LessOrEqual(j) && y.LessOrEqual(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinPropertyLeastUpperBound(t *testing.T) {
	// For every upper bound u of {x, y}, join(x,y) ⊑ u.
	f := func(a, b, c byte) bool {
		x, y, u := genLabel(a), genLabel(b), genLabel(c)
		if !x.LessOrEqual(u) || !y.LessOrEqual(u) {
			return true // u is not an upper bound; vacuous
		}
		return x.Join(y).LessOrEqual(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderPropertyAntisymmetric(t *testing.T) {
	f := func(a, b byte) bool {
		x, y := genLabel(a), genLabel(b)
		if x.LessOrEqual(y) && y.LessOrEqual(x) {
			return x.Equal(y)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromTagsMatchesIteratedJoin(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > 8 {
			raw = raw[:8]
		}
		tags := make([]Tag, len(raw))
		joined := Bottom()
		for i, b := range raw {
			tags[i] = Tag(b%3 + 1)
			joined = joined.Join(Single(tags[i]))
		}
		return FromTags(tags).Equal(joined)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
