// Package sgx is a software simulator of the Intel SGX primitives the
// paper's workflow depends on: enclave loading with code measurement,
// ECALL dispatch with EDL-driven [in]/[out] marshalling, sealing, remote
// attestation quotes, and provisioning of data-encryption keys to attested
// enclaves.
//
// The simulator substitutes for SGX hardware (see DESIGN.md §2): it runs
// enclave MiniC code on the concrete interpreter and enforces the boundary
// the analyzer reasons about — only [out] buffers, return values and OCALL
// output cross back to the untrusted host. It deliberately does NOT enforce
// anything about what the code writes into those channels; that is exactly
// PrivacyScope's job.
package sgx

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Platform errors.
var (
	ErrUnseal      = errors.New("sgx: unsealing failed (wrong enclave or corrupted blob)")
	ErrBadQuote    = errors.New("sgx: quote verification failed")
	ErrNotAttested = errors.New("sgx: enclave not attested; provisioning refused")
)

// Platform models one SGX-capable machine: it owns the fused root secret
// from which sealing and attestation keys derive.
type Platform struct {
	rootKey [32]byte
}

// NewPlatform creates a platform whose root secret derives from seed
// (deterministic, for reproducible tests and benchmarks).
func NewPlatform(seed []byte) *Platform {
	p := &Platform{}
	p.rootKey = sha256.Sum256(append([]byte("sgx-root-key:"), seed...))
	return p
}

// deriveKey derives a purpose-bound 256-bit key for an enclave
// measurement, mimicking EGETKEY's key-derivation role.
func (p *Platform) deriveKey(purpose string, measurement [32]byte) [32]byte {
	mac := hmac.New(sha256.New, p.rootKey[:])
	mac.Write([]byte(purpose))
	mac.Write(measurement[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Seal encrypts data so that only an enclave with the same measurement on
// the same platform can recover it (MRENCLAVE sealing policy). The blob is
// AES-256-GCM with a deterministic per-call nonce counter.
func (p *Platform) Seal(measurement [32]byte, nonceCounter uint64, data []byte) ([]byte, error) {
	key := p.deriveKey("seal", measurement)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: seal: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: seal: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], nonceCounter)
	blob := gcm.Seal(nil, nonce, data, measurement[:])
	return append(nonce, blob...), nil
}

// Unseal reverses Seal for the same measurement.
func (p *Platform) Unseal(measurement [32]byte, blob []byte) ([]byte, error) {
	key := p.deriveKey("seal", measurement)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: unseal: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: unseal: %w", err)
	}
	if len(blob) < gcm.NonceSize() {
		return nil, ErrUnseal
	}
	out, err := gcm.Open(nil, blob[:gcm.NonceSize()], blob[gcm.NonceSize():], measurement[:])
	if err != nil {
		return nil, ErrUnseal
	}
	return out, nil
}

// Quote is a simulated attestation quote binding report data to an enclave
// measurement on a platform.
type Quote struct {
	Measurement [32]byte
	ReportData  []byte
	MAC         [32]byte
}

// GenerateQuote produces a quote for a loaded enclave (EREPORT+QE in one
// step; the MAC stands in for the EPID/ECDSA signature).
func (p *Platform) GenerateQuote(measurement [32]byte, reportData []byte) Quote {
	qk := p.deriveKey("quote", measurement)
	mac := hmac.New(sha256.New, qk[:])
	mac.Write(reportData)
	q := Quote{Measurement: measurement, ReportData: bytes.Clone(reportData)}
	copy(q.MAC[:], mac.Sum(nil))
	return q
}

// VerifyQuote checks a quote against an expected measurement, playing the
// remote verifier (IAS) role.
func (p *Platform) VerifyQuote(q Quote, expected [32]byte) error {
	if q.Measurement != expected {
		return fmt.Errorf("%w: measurement mismatch", ErrBadQuote)
	}
	qk := p.deriveKey("quote", q.Measurement)
	mac := hmac.New(sha256.New, qk[:])
	mac.Write(q.ReportData)
	if !hmac.Equal(mac.Sum(nil), q.MAC[:]) {
		return fmt.Errorf("%w: bad MAC", ErrBadQuote)
	}
	return nil
}

// ProvisionDataKey releases the per-enclave input-encryption key to a user
// after quote verification — the provisioning step of the TEE-based secure
// computation workflow (§III). Users encrypt their private data under this
// key; only the attested enclave's runtime can decrypt it.
func (p *Platform) ProvisionDataKey(q Quote, expected [32]byte) ([32]byte, error) {
	if err := p.VerifyQuote(q, expected); err != nil {
		return [32]byte{}, fmt.Errorf("%w: %v", ErrNotAttested, err)
	}
	return p.deriveKey("data", q.Measurement), nil
}

// EncryptInput encrypts user private data under a provisioned data key.
func EncryptInput(key [32]byte, nonceCounter uint64, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], nonceCounter)
	return append(nonce, gcm.Seal(nil, nonce, plaintext, nil)...), nil
}

// DecryptInput reverses EncryptInput; the enclave runtime calls it when
// marshalling encrypted [in] parameters.
func DecryptInput(key [32]byte, blob []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(blob) < gcm.NonceSize() {
		return nil, ErrUnseal
	}
	out, err := gcm.Open(nil, blob[:gcm.NonceSize()], blob[gcm.NonceSize():], nil)
	if err != nil {
		return nil, ErrUnseal
	}
	return out, nil
}
