package sgx

import (
	"bytes"
	"errors"
	"testing"

	"privacyscope/internal/interp"
)

const testEnclaveC = `
int calls = 0;
int enclave_process_data(char *secrets, char *output)
{
    calls = calls + 1;
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
int get_calls(void) { return calls; }
`

const testEnclaveEDL = `
enclave {
    trusted {
        public int enclave_process_data([in] char *secrets, [out] char *output);
        public int get_calls();
    };
};
`

func loadTestEnclave(t *testing.T) (*Platform, *Enclave) {
	t.Helper()
	p := NewPlatform([]byte("test-platform"))
	e, err := p.LoadEnclave(testEnclaveC, testEnclaveEDL)
	if err != nil {
		t.Fatal(err)
	}
	return p, e
}

func TestLoadAndMeasure(t *testing.T) {
	p, e := loadTestEnclave(t)
	m1 := e.Measurement()
	// Same code → same measurement.
	e2, err := p.LoadEnclave(testEnclaveC, testEnclaveEDL)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Measurement() != m1 {
		t.Error("measurement must be deterministic")
	}
	// One changed byte → different measurement.
	e3, err := p.LoadEnclave(testEnclaveC+" ", testEnclaveEDL)
	if err != nil {
		t.Fatal(err)
	}
	if e3.Measurement() == m1 {
		t.Error("measurement must change with the code")
	}
}

func TestLoadErrors(t *testing.T) {
	p := NewPlatform(nil)
	if _, err := p.LoadEnclave("int f(", testEnclaveEDL); err == nil {
		t.Error("bad C must fail")
	}
	if _, err := p.LoadEnclave(testEnclaveC, "enclave {"); err == nil {
		t.Error("bad EDL must fail")
	}
	// EDL references a function the code does not define.
	edl := `enclave { trusted { public int missing([in] int *x); }; };`
	if _, err := p.LoadEnclave(testEnclaveC, edl); err == nil {
		t.Error("undefined ECALL must fail")
	}
	// Arity mismatch between EDL and code.
	edl2 := `enclave { trusted { public int enclave_process_data([in] char *secrets); }; };`
	if _, err := p.LoadEnclave(testEnclaveC, edl2); err == nil {
		t.Error("arity mismatch must fail")
	}
	// Code failing the semantic checker must fail.
	if _, err := p.LoadEnclave("int f(void) { return g(); }", "enclave { trusted { public int f(); }; };"); err == nil {
		t.Error("sema failure must fail load")
	}
}

func TestECallMarshalling(t *testing.T) {
	_, e := loadTestEnclave(t)
	res, err := e.ECall("enclave_process_data", []Arg{
		BufArg([]interp.Value{interp.CharValue(7), interp.CharValue(0)}),
		OutArg(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Return.Int() != 0 {
		t.Errorf("return = %v", res.Return)
	}
	out := res.Outs["output"]
	if len(out) != 1 || out[0].Int() != 108 {
		t.Errorf("output = %v", out)
	}

	// Different secrets[1] → observable return flips (the implicit leak,
	// running for real).
	res2, err := e.ECall("enclave_process_data", []Arg{
		BufArg([]interp.Value{interp.CharValue(7), interp.CharValue(9)}),
		OutArg(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Return.Int() != 1 {
		t.Errorf("return = %v", res2.Return)
	}
}

func TestEnclaveStatePersistsAcrossECalls(t *testing.T) {
	_, e := loadTestEnclave(t)
	for i := 0; i < 3; i++ {
		if _, err := e.ECall("enclave_process_data", []Arg{
			BufArg([]interp.Value{interp.CharValue(1), interp.CharValue(1)}),
			OutArg(1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.ECall("get_calls", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Return.Int() != 3 {
		t.Errorf("calls = %v, want 3", res.Return)
	}
}

func TestECallErrors(t *testing.T) {
	_, e := loadTestEnclave(t)
	if _, err := e.ECall("nope", nil); !errors.Is(err, ErrNoECall) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.ECall("enclave_process_data", nil); !errors.Is(err, ErrMarshal) {
		t.Errorf("err = %v", err)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p, e := loadTestEnclave(t)
	data := []byte("user ratings: 5 4 3")
	blob, err := e.Seal(data)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, data) {
		t.Error("sealed blob contains plaintext")
	}
	out, err := e.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Error("unseal mismatch")
	}
	// A different enclave (different measurement) cannot unseal.
	other, err := p.LoadEnclave(testEnclaveC+"\n", testEnclaveEDL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Unseal(blob); !errors.Is(err, ErrUnseal) {
		t.Errorf("cross-enclave unseal err = %v", err)
	}
	// Corruption is detected.
	blob[len(blob)-1] ^= 0xFF
	if _, err := e.Unseal(blob); !errors.Is(err, ErrUnseal) {
		t.Errorf("corrupted unseal err = %v", err)
	}
}

func TestAttestationAndProvisioning(t *testing.T) {
	p, e := loadTestEnclave(t)
	q := e.Quote([]byte("session-nonce"))
	if err := p.VerifyQuote(q, e.Measurement()); err != nil {
		t.Fatal(err)
	}
	// Wrong expected measurement fails.
	var wrong [32]byte
	if err := p.VerifyQuote(q, wrong); !errors.Is(err, ErrBadQuote) {
		t.Errorf("err = %v", err)
	}
	// Tampered report data fails.
	q2 := q
	q2.ReportData = []byte("evil")
	if err := p.VerifyQuote(q2, e.Measurement()); !errors.Is(err, ErrBadQuote) {
		t.Errorf("err = %v", err)
	}
	// Provisioning succeeds only with a valid quote.
	key, err := p.ProvisionDataKey(q, e.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProvisionDataKey(q2, e.Measurement()); !errors.Is(err, ErrNotAttested) {
		t.Errorf("err = %v", err)
	}
	if key == [32]byte{} {
		t.Error("empty key")
	}
}

func TestEncryptedInputFlow(t *testing.T) {
	// Full §III workflow: attest, provision, encrypt private data,
	// ECALL with ciphertext; the runtime decrypts at the boundary.
	p, e := loadTestEnclave(t)
	key, err := p.ProvisionDataKey(e.Quote(nil), e.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := EncryptInput(key, 1, []byte{7, 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ECall("enclave_process_data", []Arg{
		{Encrypted: ct},
		OutArg(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outs["output"][0].Int() != 108 {
		t.Errorf("output = %v", res.Outs["output"])
	}
	// Garbage ciphertext is rejected at the boundary.
	if _, err := e.ECall("enclave_process_data", []Arg{
		{Encrypted: []byte("junk")},
		OutArg(1),
	}); err == nil {
		t.Error("bad ciphertext must fail")
	}
	// Ciphertext under the wrong key is rejected.
	wrongKey := [32]byte{1}
	ct2, _ := EncryptInput(wrongKey, 1, []byte{7, 0})
	if _, err := e.ECall("enclave_process_data", []Arg{
		{Encrypted: ct2},
		OutArg(1),
	}); err == nil {
		t.Error("wrong-key ciphertext must fail")
	}
}

func TestOutBufferNotCopiedIn(t *testing.T) {
	// [out]-only buffers must enter the enclave zeroed, not with host
	// contents.
	src := `
int probe(int *output) {
    int v = output[0];
    output[0] = v + 1;
    return v;
}
`
	edlSrc := `enclave { trusted { public int probe([out] int *output); }; };`
	p := NewPlatform(nil)
	e, err := p.LoadEnclave(src, edlSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ECall("probe", []Arg{{
		Buffer: []interp.Value{interp.IntValue(99)}, // host tries to smuggle
		Len:    1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Return.Int() != 0 {
		t.Errorf("enclave saw host memory: %v", res.Return)
	}
	if res.Outs["output"][0].Int() != 1 {
		t.Errorf("out = %v", res.Outs["output"])
	}
}

func TestSealDeterministicPlatformSeparation(t *testing.T) {
	// Two platforms with different seeds cannot unseal each other's
	// blobs.
	p1 := NewPlatform([]byte("a"))
	p2 := NewPlatform([]byte("b"))
	e1, err := p1.LoadEnclave(testEnclaveC, testEnclaveEDL)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e1.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Unseal(e1.Measurement(), blob); !errors.Is(err, ErrUnseal) {
		t.Errorf("cross-platform unseal err = %v", err)
	}
}

func TestQuoteFromOtherPlatformRejected(t *testing.T) {
	p1 := NewPlatform([]byte("a"))
	p2 := NewPlatform([]byte("b"))
	e1, err := p1.LoadEnclave(testEnclaveC, testEnclaveEDL)
	if err != nil {
		t.Fatal(err)
	}
	q := e1.Quote(nil)
	if err := p2.VerifyQuote(q, e1.Measurement()); !errors.Is(err, ErrBadQuote) {
		t.Errorf("err = %v", err)
	}
}

func TestPrintedOcallOutput(t *testing.T) {
	src := `
int f(int *x) {
    printf("got %d", x[0]);
    return 0;
}
`
	edlSrc := `enclave { trusted { public int f([in] int *x); }; };`
	p := NewPlatform(nil)
	e, err := p.LoadEnclave(src, edlSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ECall("f", []Arg{BufArg([]interp.Value{interp.IntValue(5)})})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Printed) != 1 || res.Printed[0] != "got 5" {
		t.Errorf("printed = %v", res.Printed)
	}
}

func TestCustomOCallDispatch(t *testing.T) {
	src := `
int f(int *secrets) {
    report_metric(secrets[0] * 2);
    report_metric(7);
    return 0;
}
`
	edlSrc := `
enclave {
    trusted {
        public int f([in] int *secrets);
    };
    untrusted {
        void report_metric(int v);
    };
};
`
	p := NewPlatform(nil)
	e, err := p.LoadEnclave(src, edlSrc)
	if err != nil {
		t.Fatal(err)
	}
	var seen []int64
	if err := e.RegisterOCall("report_metric", func(args []interp.Value) (interp.Value, error) {
		seen = append(seen, args[0].Int())
		return interp.IntValue(0), nil
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.ECall("f", []Arg{BufArg([]interp.Value{interp.IntValue(21)})})
	if err != nil {
		t.Fatal(err)
	}
	// The host handler observed the secret-derived value — exactly the
	// leak channel PrivacyScope's OCALL sink models.
	if len(seen) != 2 || seen[0] != 42 || seen[1] != 7 {
		t.Errorf("handler saw %v", seen)
	}
	if len(res.OCalls) != 2 || res.OCalls[0].Func != "report_metric" {
		t.Errorf("OCalls = %+v", res.OCalls)
	}
	if res.OCalls[0].Args[0].Int() != 42 {
		t.Errorf("logged arg = %v", res.OCalls[0].Args[0])
	}
}

func TestOCallWithoutHandlerStillLogged(t *testing.T) {
	src := `int f(void) { notify(3); return 0; }`
	edlSrc := `
enclave {
    trusted { public int f(); };
    untrusted { void notify(int v); };
};
`
	p := NewPlatform(nil)
	e, err := p.LoadEnclave(src, edlSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ECall("f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OCalls) != 1 || res.OCalls[0].Args[0].Int() != 3 {
		t.Errorf("OCalls = %+v", res.OCalls)
	}
}

func TestRegisterOCallRejectsUndeclared(t *testing.T) {
	_, e := loadTestEnclave(t)
	if err := e.RegisterOCall("undeclared", nil); err == nil {
		t.Error("undeclared OCALL registration must fail")
	}
}

func TestUndeclaredExternFailsLoad(t *testing.T) {
	// Calling a function neither defined, builtin, nor EDL-untrusted
	// fails the load-time check.
	src := `int f(void) { rogue(); return 0; }`
	edlSrc := `enclave { trusted { public int f(); }; };`
	if _, err := NewPlatform(nil).LoadEnclave(src, edlSrc); err == nil {
		t.Error("undeclared extern must fail load")
	}
}
