package sgx

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"privacyscope/internal/edl"
	"privacyscope/internal/interp"
	"privacyscope/internal/minic"
)

// Enclave errors.
var (
	ErrNoECall     = errors.New("sgx: no such ECALL")
	ErrPrivateCall = errors.New("sgx: ECALL is not public")
	ErrMarshal     = errors.New("sgx: marshalling error")
)

// OCallEvent records one OCALL observed crossing the enclave boundary:
// everything in it is visible to the untrusted host.
type OCallEvent struct {
	Func string
	Args []interp.Value
}

// OCallHandler is a host-side implementation of an EDL untrusted function.
type OCallHandler func(args []interp.Value) (interp.Value, error)

// Enclave is a loaded enclave: measured code plus its EDL boundary,
// executing on the concrete MiniC interpreter. Global state persists across
// ECALLs, as in a real enclave.
type Enclave struct {
	platform    *Platform
	file        *minic.File
	iface       *edl.Interface
	measurement [32]byte
	machine     *interp.Machine
	dataKey     [32]byte
	sealCounter uint64
	ocallLog    []OCallEvent
	handlers    map[string]OCallHandler
}

// LoadEnclave parses, checks and measures enclave code. The measurement is
// the SHA-256 of the C source and the EDL text — the simulator's MRENCLAVE.
func (p *Platform) LoadEnclave(cSource, edlSource string) (*Enclave, error) {
	file, err := minic.Parse(cSource)
	if err != nil {
		return nil, fmt.Errorf("sgx: load: %w", err)
	}
	iface, err := edl.Parse(edlSource)
	if err != nil {
		return nil, fmt.Errorf("sgx: load: %w", err)
	}
	// Enclave code may call any EDL-declared untrusted function.
	builtins := append(append([]string(nil), minic.DefaultBuiltins...), iface.OCallNames()...)
	if err := minic.NewChecker(builtins).Check(file); err != nil {
		return nil, fmt.Errorf("sgx: load: %w", err)
	}
	for _, sig := range iface.Trusted {
		fn, ok := file.Function(sig.Name)
		if !ok || fn.Body == nil {
			return nil, fmt.Errorf("sgx: load: ECALL %s has no definition", sig.Name)
		}
		if len(fn.Params) != len(sig.Params) {
			return nil, fmt.Errorf("sgx: load: ECALL %s: EDL declares %d params, code has %d",
				sig.Name, len(sig.Params), len(fn.Params))
		}
	}
	machine, err := interp.NewMachine(file)
	if err != nil {
		return nil, fmt.Errorf("sgx: load: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(cSource))
	h.Write([]byte{0})
	h.Write([]byte(edlSource))
	enc := &Enclave{
		platform: p, file: file, iface: iface, machine: machine,
		handlers: make(map[string]OCallHandler),
	}
	copy(enc.measurement[:], h.Sum(nil))
	enc.dataKey = p.deriveKey("data", enc.measurement)
	// Dispatch EDL-declared OCALLs across the boundary: every call is
	// logged (it is host-observable by definition) and routed to a
	// registered host handler when one exists.
	ocalls := make(map[string]bool)
	for _, name := range iface.OCallNames() {
		ocalls[name] = true
	}
	machine.OCallHandler = func(name string, args []interp.Value) (interp.Value, bool, error) {
		if !ocalls[name] {
			return interp.Value{}, false, nil
		}
		enc.ocallLog = append(enc.ocallLog, OCallEvent{Func: name, Args: args})
		if h, ok := enc.handlers[name]; ok {
			result, err := h(args)
			return result, true, err
		}
		return interp.IntValue(0), true, nil
	}
	return enc, nil
}

// RegisterOCall installs a host-side implementation for an EDL-declared
// untrusted function. Returns an error for undeclared names.
func (e *Enclave) RegisterOCall(name string, h OCallHandler) error {
	for _, n := range e.iface.OCallNames() {
		if n == name {
			e.handlers[name] = h
			return nil
		}
	}
	return fmt.Errorf("sgx: %s is not declared untrusted in the EDL", name)
}

// Measurement returns the enclave's MRENCLAVE-equivalent.
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// Quote produces an attestation quote over the given report data.
func (e *Enclave) Quote(reportData []byte) Quote {
	return e.platform.GenerateQuote(e.measurement, reportData)
}

// Seal seals data to this enclave's identity.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	e.sealCounter++
	return e.platform.Seal(e.measurement, e.sealCounter, data)
}

// Unseal recovers data sealed by this enclave.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	return e.platform.Unseal(e.measurement, blob)
}

// Arg is one ECALL argument from the untrusted host.
type Arg struct {
	// Scalar is the value for non-pointer parameters.
	Scalar interp.Value
	// Buffer carries the cells marshalled in for an [in] pointer
	// parameter (plaintext).
	Buffer []interp.Value
	// Encrypted carries ciphertext produced by EncryptInput for an [in]
	// parameter of char type; the runtime decrypts it at the boundary,
	// modeling in-enclave IPP decryption.
	Encrypted []byte
	// Len is the element count to allocate for [out]-only parameters.
	Len int
}

// ScalarArg wraps a scalar argument.
func ScalarArg(v interp.Value) Arg { return Arg{Scalar: v} }

// BufArg wraps a plaintext [in] buffer.
func BufArg(cells []interp.Value) Arg { return Arg{Buffer: cells} }

// OutArg allocates an [out] buffer of n elements.
func OutArg(n int) Arg { return Arg{Len: n} }

// ECallResult is what crosses back to the untrusted host: exactly the
// observables PrivacyScope reasons about.
type ECallResult struct {
	Return interp.Value
	// Outs holds the final contents of each [out] (and [in,out])
	// buffer, by parameter name.
	Outs map[string][]interp.Value
	// Printed is the printf/ocall_print output emitted during the call.
	Printed []string
	// OCalls lists the EDL-declared untrusted calls made during the
	// call, with their (host-observable) arguments.
	OCalls []OCallEvent
}

// ECall dispatches a trusted call with EDL-driven marshalling.
func (e *Enclave) ECall(name string, args []Arg) (*ECallResult, error) {
	sig, ok := e.iface.ECall(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoECall, name)
	}
	if !sig.Public {
		return nil, fmt.Errorf("%w: %s", ErrPrivateCall, name)
	}
	fn, _ := e.file.Function(name)
	if len(args) != len(sig.Params) {
		return nil, fmt.Errorf("%w: %s expects %d args, got %d", ErrMarshal, name, len(sig.Params), len(args))
	}

	vals := make([]interp.Value, len(args))
	type outBuf struct {
		name string
		obj  *interp.Object
	}
	var outs []outBuf
	for i, p := range sig.Params {
		if !p.Pointer {
			vals[i] = args[i].Scalar
			continue
		}
		cells := args[i].Buffer
		if len(args[i].Encrypted) > 0 {
			if !p.In {
				return nil, fmt.Errorf("%w: encrypted data for non-[in] param %s", ErrMarshal, p.Name)
			}
			plain, err := DecryptInput(e.dataKey, args[i].Encrypted)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrMarshal, p.Name, err)
			}
			cells = make([]interp.Value, len(plain))
			for j, b := range plain {
				cells[j] = interp.CharValue(int64(int8(b)))
			}
		}
		n := len(cells)
		if args[i].Len > n {
			n = args[i].Len
		}
		if n == 0 {
			n = 1
		}
		kind := cellKindFor(fn.Params[i].Type)
		buf := interp.NewBuffer(p.Name, kind, n)
		if p.In {
			if err := buf.SetCells(cells); err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrMarshal, p.Name, err)
			}
		}
		// Non-[in] buffers enter zeroed: the proxy never copies host
		// memory in for [out]-only parameters.
		vals[i] = interp.PtrValue(interp.Pointer{Obj: buf})
		if p.Out {
			outs = append(outs, outBuf{name: p.Name, obj: buf})
		}
	}

	printedBefore := len(e.machine.Printed)
	ocallsBefore := len(e.ocallLog)
	ret, err := e.machine.Call(name, vals)
	if err != nil {
		return nil, fmt.Errorf("sgx: ecall %s: %w", name, err)
	}
	res := &ECallResult{Return: ret, Outs: make(map[string][]interp.Value, len(outs))}
	for _, ob := range outs {
		res.Outs[ob.name] = ob.obj.Cells()
	}
	res.Printed = append(res.Printed, e.machine.Printed[printedBefore:]...)
	res.OCalls = append(res.OCalls, e.ocallLog[ocallsBefore:]...)
	return res, nil
}

func cellKindFor(t minic.Type) interp.CellKind {
	elem, ok := minic.ElemType(t)
	if !ok {
		return interp.CellInt
	}
	if b, ok := elem.(minic.Basic); ok {
		switch b.Kind {
		case minic.Char:
			return interp.CellChar
		case minic.Float, minic.Double:
			return interp.CellFloat
		}
	}
	return interp.CellInt
}

// Interface exposes the parsed EDL boundary (the analyzer consumes it).
func (e *Enclave) Interface() *edl.Interface { return e.iface }

// File exposes the parsed enclave code (the analyzer consumes it).
func (e *Enclave) File() *minic.File { return e.file }
