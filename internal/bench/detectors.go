package bench

import (
	"fmt"
	"strings"
	"time"

	"privacyscope"
	"privacyscope/internal/obs"
)

// DetectorBenchRow is one detector selection analyzed over the pack-dense
// module: the baseline (default set), each scenario pack added on its own,
// and everything at once. Findings and exploration counters are
// deterministic per selection; Seconds is the host-dependent cost column —
// comparing a pack's row against the baseline row prices that pack.
type DetectorBenchRow struct {
	// Config names the selection ("baseline", "+ocall-pointer", ..., "all").
	Config string `json:"config"`
	// Findings is the total finding count under this selection;
	// PackFindings is the subset attributed to the scenario packs (the
	// detect.findings counter).
	Findings     int   `json:"findings"`
	PackFindings int64 `json:"packFindings"`
	// Paths/States pin that detectors never change the exploration itself —
	// every selection shares one engine walk shape.
	Paths  int `json:"paths"`
	States int `json:"states"`
	// Seconds is the selection's wall clock over detectorBenchIters
	// repeated analyses (timing column; repetition damps scheduler jitter
	// on a sub-millisecond module).
	Seconds float64 `json:"seconds"`
}

// detectorBenchIters is how many times each selection analyzes the module;
// the row reports the total.
const detectorBenchIters = 20

// detectorBenchC is the pack-dense module: a secret-derived cell escaping
// through an OCALL pointer (ocall-pointer), the OCALL running before the
// lifecycle gate (orderliness), a secret-dependent branch guarding a
// secret-indexed table lookup (access-pattern), and a status code computed
// over a secret mix (errcode-channel) — while every observable scalar stays
// multi-tag-masked so the baseline explicit policy prices only its own
// work. The helper loop gives each path enough states that the per-detector
// delta is measured against a non-trivial exploration.
const detectorBenchC = `
void init_session(void)
{
    int ready;
    ready = 1;
}
int helper(int x)
{
    int acc = x;
    int i = 0;
    while (i < 8) { acc = acc + 3; i = i + 1; }
    return acc;
}
int enclave_mix(int *secrets, int *table, int *output)
{
    int buf[2];
    int acc = helper(secrets[0]);
    buf[0] = secrets[1] * 2;
    buf[1] = acc;
    ocall_send(buf);
    init_session();
    if (secrets[2] > 0)
        acc = acc + table[secrets[3]];
    else
        acc = acc + 1;
    output[0] = acc + secrets[4] + secrets[5];
    return secrets[6] + secrets[7];
}
`

const detectorBenchEDL = `
enclave {
    trusted {
        public int enclave_mix([in] int *secrets, [user_check] int *table, [out] int *output);
    };
    untrusted {
        void ocall_send([user_check] int *buf);
    };
};
`

// detectorBenchXML supplies the lifecycle gate the orderliness pack needs;
// it applies to every selection so the rows differ only in detector choice.
const detectorBenchXML = `<privacyscope><lifecycle init="init_session"/></privacyscope>`

// DetectorBench prices the scenario packs: the pack-dense module analyzed
// under the default set, under each pack added individually, and with every
// registered detector on at once.
func DetectorBench() ([]DetectorBenchRow, error) {
	configs := []struct {
		name      string
		detectors []string
	}{
		{"baseline", nil},
		{"+ocall-pointer", []string{"default", "ocall-pointer"}},
		{"+errcode-channel", []string{"default", "errcode-channel"}},
		{"+orderliness", []string{"default", "orderliness"}},
		{"+access-pattern", []string{"default", "access-pattern"}},
		{"all", []string{"all"}},
	}
	// One untimed warm-up so the first row doesn't absorb process-global
	// lazy initialization.
	if _, err := privacyscope.AnalyzeEnclave(detectorBenchC, detectorBenchEDL,
		privacyscope.WithConfigXML([]byte(detectorBenchXML))); err != nil {
		return nil, fmt.Errorf("detector bench warm-up: %w", err)
	}
	var rows []DetectorBenchRow
	for _, cf := range configs {
		metrics := obs.NewMetrics()
		opts := []privacyscope.Option{
			privacyscope.WithConfigXML([]byte(detectorBenchXML)),
			privacyscope.WithObserver(metrics),
		}
		if cf.detectors != nil {
			opts = append(opts, privacyscope.WithDetectors(cf.detectors...))
		}
		var rep *privacyscope.EnclaveReport
		start := time.Now()
		for i := 0; i < detectorBenchIters; i++ {
			var err error
			rep, err = privacyscope.AnalyzeEnclave(detectorBenchC, detectorBenchEDL, opts...)
			if err != nil {
				return nil, fmt.Errorf("detector bench %s: %w", cf.name, err)
			}
		}
		row := DetectorBenchRow{
			Config:       cf.name,
			Findings:     rep.TotalFindings(),
			PackFindings: metrics.Counter("detect.findings") / detectorBenchIters,
			Seconds:      time.Since(start).Seconds(),
		}
		for _, r := range rep.Reports {
			row.Paths += r.Paths
			row.States += r.States
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderDetectorBench formats the pack cost study.
func RenderDetectorBench(rows []DetectorBenchRow) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("Detector pack cost — pack-dense module, wall clock over %d runs\n", detectorBenchIters))
	sb.WriteString(fmt.Sprintf("%-18s %9s %6s %7s %8s %12s %10s\n",
		"Selection", "findings", "pack", "paths", "states", "seconds", "overhead"))
	var base float64
	for _, r := range rows {
		if r.Config == "baseline" {
			base = r.Seconds
		}
	}
	for _, r := range rows {
		overhead := "-"
		if base > 0 && r.Config != "baseline" {
			overhead = fmt.Sprintf("%+.0f%%", (r.Seconds/base-1)*100)
		}
		sb.WriteString(fmt.Sprintf("%-18s %9d %6d %7d %8d %12.6f %10s\n",
			r.Config, r.Findings, r.PackFindings, r.Paths, r.States, r.Seconds, overhead))
	}
	sb.WriteString("(one engine walk per selection; detectors only post-process it, so\n")
	sb.WriteString("paths/states are selection-invariant and overhead prices the detector)\n")
	return sb.String()
}
