package bench

import (
	"strings"
	"testing"
)

// TestDetectorBenchRows pins the study's deterministic invariants: every
// selection appears, the engine walk is selection-invariant (identical
// paths/states on every row), the baseline reports no pack findings, each
// single-pack row finds its seeded leak, and the all-on row sees every
// pack's findings at once.
func TestDetectorBenchRows(t *testing.T) {
	rows, err := DetectorBench()
	if err != nil {
		t.Fatal(err)
	}
	byConfig := map[string]DetectorBenchRow{}
	for _, r := range rows {
		byConfig[r.Config] = r
	}
	base, ok := byConfig["baseline"]
	if !ok {
		t.Fatal("no baseline row")
	}
	if base.PackFindings != 0 {
		t.Errorf("baseline reported %d pack findings, want 0", base.PackFindings)
	}
	for _, cfg := range []string{"+ocall-pointer", "+errcode-channel", "+orderliness", "+access-pattern", "all"} {
		r, ok := byConfig[cfg]
		if !ok {
			t.Errorf("missing row %q", cfg)
			continue
		}
		if r.Paths != base.Paths || r.States != base.States {
			t.Errorf("%s: paths/states %d/%d diverge from baseline %d/%d — detectors changed the walk",
				cfg, r.Paths, r.States, base.Paths, base.States)
		}
		if r.PackFindings == 0 {
			t.Errorf("%s: pack found nothing in the pack-dense module", cfg)
		}
		if r.Findings < base.Findings+int(r.PackFindings) {
			t.Errorf("%s: findings %d < baseline %d + pack %d — pack displaced a baseline finding",
				cfg, r.Findings, base.Findings, r.PackFindings)
		}
	}
	all := byConfig["all"]
	for _, cfg := range []string{"+ocall-pointer", "+errcode-channel", "+orderliness", "+access-pattern"} {
		if one, ok := byConfig[cfg]; ok && all.PackFindings < one.PackFindings {
			t.Errorf("all-on pack findings %d < %s's %d", all.PackFindings, cfg, one.PackFindings)
		}
	}
	out := RenderDetectorBench(rows)
	for _, want := range []string{"baseline", "+access-pattern", "overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered study lacks %q:\n%s", want, out)
		}
	}
}
