package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"privacyscope/internal/batch"
	"privacyscope/internal/diskcache"
	"privacyscope/internal/mlsuite"
	"privacyscope/internal/obs"
)

// BatchBenchRow is one mode of the cold-vs-warm batch study: how many
// engine analyses a whole-project run actually pays with the persistent
// result cache in front of it.
type BatchBenchRow struct {
	// Mode: "cold" (empty cache), "warm" (nothing changed), or
	// "warm-1-modified" (one unit's source edited between runs).
	Mode string `json:"mode"`
	// Units discovered in the project tree.
	Units int `json:"units"`
	// EngineAnalyses the run executed (batch.units.analyzed).
	EngineAnalyses int64 `json:"engineAnalyses"`
	// DiskHits served from the persistent cache (diskcache.hits).
	DiskHits int64 `json:"diskHits"`
	// Seconds of whole-run wall clock.
	Seconds float64 `json:"seconds"`
}

// batchBenchTree materializes the study's project: the three Table V ML
// modules plus the four Table VI micro-cases, as (c, edl) units.
func batchBenchTree(root string) error {
	write := func(base, c, e string) error {
		if err := os.WriteFile(filepath.Join(root, base+".c"), []byte(c), 0o644); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(root, base+".edl"), []byte(e), 0o644)
	}
	for _, m := range mlsuite.Modules() {
		if err := write(strings.ToLower(m.Name), m.C, m.EDL); err != nil {
			return err
		}
	}
	for _, tc := range tableVISuite {
		edl := "enclave {\n    trusted {\n        public int f([in] int *secrets, [out] int *output);\n    };\n};\n"
		if err := write("micro_"+tc.name, tc.src, edl); err != nil {
			return err
		}
	}
	return nil
}

// BatchBench measures the incremental-rerun story end to end: a cold
// project run, a fully warm rerun, and a rerun after one source edit. The
// acceptance shape — a warm rerun with one modified unit pays ≥5× fewer
// engine analyses than cold — is visible directly in the EngineAnalyses
// column.
func BatchBench() ([]BatchBenchRow, error) {
	root, err := os.MkdirTemp("", "psbatchbench-src-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	cacheDir, err := os.MkdirTemp("", "psbatchbench-cache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cacheDir)
	if err := batchBenchTree(root); err != nil {
		return nil, err
	}

	run := func(mode string) (BatchBenchRow, error) {
		m := obs.NewMetrics()
		cache, err := diskcache.Open(diskcache.Config{Dir: cacheDir, Observer: m})
		if err != nil {
			return BatchBenchRow{}, err
		}
		units, err := batch.Discover(root)
		if err != nil {
			return BatchBenchRow{}, err
		}
		start := time.Now()
		batch.Run(context.Background(), root, units, batch.Config{Cache: cache, Observer: m})
		return BatchBenchRow{
			Mode:           mode,
			Units:          len(units),
			EngineAnalyses: m.Counter("batch.units.analyzed"),
			DiskHits:       m.Counter("diskcache.hits"),
			Seconds:        time.Since(start).Seconds(),
		}, nil
	}

	var rows []BatchBenchRow
	cold, err := run("cold")
	if err != nil {
		return nil, err
	}
	warm, err := run("warm")
	if err != nil {
		return nil, err
	}
	// Edit one unit: append a non-ECALL helper, changing the content hash
	// without changing any analyzed entry point.
	target := filepath.Join(root, "micro_clean.c")
	src, err := os.ReadFile(target)
	if err != nil {
		return nil, err
	}
	edited := append(src, []byte("\nint bench_pad(int x) {\n    return x + 1;\n}\n")...)
	if err := os.WriteFile(target, edited, 0o644); err != nil {
		return nil, err
	}
	mod, err := run("warm-1-modified")
	if err != nil {
		return nil, err
	}
	rows = append(rows, cold, warm, mod)
	return rows, nil
}

// RenderBatchBench formats the cold-vs-warm table.
func RenderBatchBench(rows []BatchBenchRow) string {
	var sb strings.Builder
	sb.WriteString("Batch analysis — cold vs. warm project runs (persistent result cache)\n")
	sb.WriteString(fmt.Sprintf("%-18s %7s %16s %10s %12s\n",
		"Mode", "units", "engine-analyses", "disk-hits", "time(s)"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-18s %7d %16d %10d %12.6f\n",
			r.Mode, r.Units, r.EngineAnalyses, r.DiskHits, r.Seconds))
	}
	return sb.String()
}
