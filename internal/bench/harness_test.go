package bench

import (
	"strings"
	"testing"
)

func TestFig1LatticeTable(t *testing.T) {
	out := Fig1LatticeTable()
	for _, want := range []string{"⊥", "t1", "t2", "⊤", "⊔"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFig2PropagationTable(t *testing.T) {
	flat := strings.ReplaceAll(Fig2PropagationTable(), " ", "")
	for _, want := range []string{
		"P_binop(t1,t2)=⊤",
		"P_binop(t1,⊥)=t1",
		"P_cond(t1,⊥)=t1",
		"P_cond(t2,t1)=⊤",
	} {
		if !strings.Contains(flat, want) {
			t.Errorf("missing %q in:\n%s", want, Fig2PropagationTable())
		}
	}
}

func TestTableIIAndIII(t *testing.T) {
	out2, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "explicit") || !strings.Contains(out2, "2 * s1") {
		t.Errorf("Table II:\n%s", out2)
	}
	out3, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "implicit") {
		t.Errorf("Table III:\n%s", out3)
	}
}

func TestTableIVAndBox1(t *testing.T) {
	out4, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"state A", "paths: 2", "secrets[1]"} {
		if !strings.Contains(out4, want) {
			t.Errorf("Table IV missing %q:\n%s", want, out4)
		}
	}
	box, err := Box1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"explicit", "implicit", "recovery"} {
		if !strings.Contains(box, want) {
			t.Errorf("Box 1 missing %q:\n%s", want, box)
		}
	}
}

func TestTableVShape(t *testing.T) {
	rows, err := TableV()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]TableVRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Seconds <= 0 {
			t.Errorf("%s: no time measured", r.Name)
		}
	}
	// Shape: Kmeans is the slowest, Recommender the fastest — the
	// ordering Table V reports.
	if !(byName["Kmeans"].Seconds > byName["LinearRegression"].Seconds) {
		t.Errorf("Kmeans (%.6fs) must be slower than LinearRegression (%.6fs)",
			byName["Kmeans"].Seconds, byName["LinearRegression"].Seconds)
	}
	if byName["Recommender"].Findings != 6 {
		t.Errorf("Recommender findings = %d, want 6", byName["Recommender"].Findings)
	}
	out := RenderTableV(rows)
	if !strings.Contains(out, "Kmeans") || !strings.Contains(out, "paper-time") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTableVIMatrix(t *testing.T) {
	cells, err := TableVI()
	if err != nil {
		t.Fatal(err)
	}
	verdict := map[string]bool{}
	for _, c := range cells {
		verdict[c.Analysis+"|"+c.Case] = c.Flagged
	}
	want := map[string]bool{
		"PrivacyScope (NonRev)|explicit":     true,
		"PrivacyScope (NonRev)|implicit":     true,
		"PrivacyScope (NonRev)|masked-ml":    false,
		"PrivacyScope (NonRev)|clean":        false,
		"Noninterference|explicit":           true,
		"Noninterference|implicit":           true,
		"Noninterference|masked-ml":          true,
		"Noninterference|clean":              false,
		"DFA taint (path-insens.)|explicit":  true,
		"DFA taint (path-insens.)|implicit":  false,
		"DFA taint (path-insens.)|masked-ml": true,
		"DFA taint (path-insens.)|clean":     false,
		"Security type system|explicit":      true,
		"Security type system|implicit":      true,
		"Security type system|masked-ml":     true,
		"Security type system|clean":         false,
	}
	for k, w := range want {
		if verdict[k] != w {
			t.Errorf("%s = %v, want %v", k, verdict[k], w)
		}
	}
	out := RenderTableVI(cells)
	if !strings.Contains(out, "PrivacyScope") || !strings.Contains(out, "✓") {
		t.Errorf("render:\n%s", out)
	}
}

func TestCaseStudiesRender(t *testing.T) {
	out, err := CaseStudies()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"total: 6 violations (paper: 6)",
		"injected, detected",
		"points[0]",
		"points[7]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("case studies missing %q:\n%s", want, out)
		}
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name, config string) (AblationRow, bool) {
		for _, r := range rows {
			if r.Name == name && r.Config == config {
				return r, true
			}
		}
		return AblationRow{}, false
	}
	onRow, ok1 := get("implicit-check", "on")
	offRow, ok2 := get("implicit-check", "off")
	if !ok1 || !ok2 {
		t.Fatalf("rows = %+v", rows)
	}
	if onRow.Findings <= offRow.Findings {
		t.Errorf("implicit-check on (%d) must find more than off (%d)", onRow.Findings, offRow.Findings)
	}
	prOn, _ := get("solver-pruning", "on")
	prOff, _ := get("solver-pruning", "off")
	if prOn.Paths >= prOff.Paths {
		t.Errorf("pruning on (%d paths) must explore fewer than off (%d)", prOn.Paths, prOff.Paths)
	}
	lb2, _ := get("loop-bound", "2")
	lb16, _ := get("loop-bound", "16")
	if lb2.Paths >= lb16.Paths {
		t.Errorf("loop bound 2 (%d paths) must explore fewer than 16 (%d)", lb2.Paths, lb16.Paths)
	}
	out := RenderAblations(rows)
	if !strings.Contains(out, "loop-bound") {
		t.Errorf("render:\n%s", out)
	}
}

func TestRunAll(t *testing.T) {
	out, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Fig. 1", "Fig. 2", "Table II", "Table III", "Table IV",
		"Table V", "Table VI", "Case study 1", "Case study 2", "Ablations",
		"Fail-soft",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll missing %q", want)
		}
	}
}

func TestScalabilityStudy(t *testing.T) {
	rows, err := Scalability()
	if err != nil {
		t.Fatal(err)
	}
	// Path explosion: paths = 2^branches for the branch sweep.
	for _, r := range rows {
		if r.Straight == 4 {
			want := 1 << r.Branches
			if r.Paths != want {
				t.Errorf("branches=%d: paths = %d, want %d", r.Branches, r.Paths, want)
			}
		}
	}
	// Straight-line sweep keeps paths constant (4 = 2^2 branches).
	for _, r := range rows {
		if r.Branches == 2 && r.Paths != 4 {
			t.Errorf("straight=%d: paths = %d, want 4", r.Straight, r.Paths)
		}
	}
	out := RenderScalability(rows)
	if !strings.Contains(out, "Scalability") || !strings.Contains(out, "2^n") {
		t.Errorf("render:\n%s", out)
	}
	// ScalabilityProgram must parse.
	if _, err := RunPRIMLExample(Example1PRIML); err != nil {
		t.Fatal(err)
	}
}

func TestDeepKmeansScales(t *testing.T) {
	row, err := DeepKmeans()
	if err != nil {
		t.Fatal(err)
	}
	// Two assignment rounds over four points: well beyond the single-
	// iteration 16 paths, completed within the path budget.
	if row.Paths <= 16 {
		t.Errorf("paths = %d, want > 16", row.Paths)
	}
	if row.Seconds > 30 {
		t.Errorf("deep kmeans took %.2fs", row.Seconds)
	}
}

func TestFailsoftTable(t *testing.T) {
	rows, err := Failsoft()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 degraded rows, got %d", len(rows))
	}
	wantReason := map[string]string{
		"path-budget": "path-budget",
		"step-budget": "step-budget",
		"deadline":    "deadline",
	}
	for _, r := range rows {
		if r.Verdict != "inconclusive" {
			t.Errorf("%s: verdict = %q, want inconclusive", r.Mode, r.Verdict)
		}
		if r.Reason != wantReason[r.Mode] {
			t.Errorf("%s: reason = %q, want %q", r.Mode, r.Reason, wantReason[r.Mode])
		}
		if r.Degraded != 1 {
			t.Errorf("%s: check.degraded = %d, want 1", r.Mode, r.Degraded)
		}
	}
	// The path-budget cut keeps exactly its budget's worth of paths.
	if rows[0].Completed != 32 {
		t.Errorf("path-budget: completed = %d, want 32", rows[0].Completed)
	}
	out := RenderFailsoft(rows)
	if !strings.Contains(out, "Fail-soft") || !strings.Contains(out, "inconclusive") {
		t.Errorf("render:\n%s", out)
	}
}
