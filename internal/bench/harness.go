// Package bench regenerates every table and figure of the paper's
// evaluation as printed rows: the Fig. 1/2 lattice tables, the Table II/III
// PRIML simulation traces, the Table IV symbolic exploration, the Table V
// performance table (paper vs. measured), the Table VI detection matrix,
// and the two §VI-D case studies. cmd/benchreport prints them; the
// testing.B benchmarks in the repository root time them.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"privacyscope/internal/baseline"
	"privacyscope/internal/core"
	"privacyscope/internal/edl"
	"privacyscope/internal/minic"
	"privacyscope/internal/mlsuite"
	"privacyscope/internal/obs"
	"privacyscope/internal/priml"
	"privacyscope/internal/symexec"
	"privacyscope/internal/taint"
)

// Example1PRIML is the paper's Example 1 (Table II).
const Example1PRIML = `h1 := 2 * get_secret(secret);
h2 := 3 * get_secret(secret);
x := h1 + h2;
declassify(x);
declassify(h1)`

// Example2PRIML is the paper's Example 2 (Table III).
const Example2PRIML = `h := 2 * get_secret(secret);
if h - 5 == 14 then declassify(0) else declassify(1)`

// Listing1C is the paper's Listing 1 (Table IV, Box 1).
const Listing1C = `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`

// Listing1EDL is the matching interface file.
const Listing1EDL = `
enclave {
    trusted {
        public int enclave_process_data([in] char *secrets, [out] char *output);
    };
};
`

// Fig1LatticeTable renders the join table of the security semi-lattice.
func Fig1LatticeTable() string {
	labels := []taint.Label{taint.Bottom(), taint.Single(1), taint.Single(2), taint.Top()}
	var sb strings.Builder
	sb.WriteString("Fig. 1 — security semi-lattice join table\n")
	sb.WriteString("  ⊔  |")
	for _, l := range labels {
		fmt.Fprintf(&sb, " %3s", l)
	}
	sb.WriteString("\n-----+----------------\n")
	for _, a := range labels {
		fmt.Fprintf(&sb, " %3s |", a)
		for _, b := range labels {
			fmt.Fprintf(&sb, " %3s", a.Join(b))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig2PropagationTable renders the binop/cond propagation rules.
func Fig2PropagationTable() string {
	var alloc taint.Allocator
	p := taint.NewPolicy(&alloc)
	t1 := p.GetSecret()
	t2 := p.GetSecret()
	rows := []struct {
		name string
		out  taint.Label
	}{
		{"P_binop(⊥, ⊥)", p.Binop(taint.Bottom(), taint.Bottom())},
		{"P_binop(t1, ⊥)", p.Binop(t1, taint.Bottom())},
		{"P_binop(t1, t1)", p.Binop(t1, t1)},
		{"P_binop(t1, t2)", p.Binop(t1, t2)},
		{"P_binop(t1, ⊤)", p.Binop(t1, taint.Top())},
		{"P_cond(t1, ⊥)", p.Cond(t1, taint.Bottom())},
		{"P_cond(t2, t1)", p.Cond(t2, t1)},
		{"P_cond(⊥, ⊤)", p.Cond(taint.Bottom(), taint.Top())},
	}
	var sb strings.Builder
	sb.WriteString("Fig. 2 — taint propagation (binary ops and conditionals)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-16s = %s\n", r.name, r.out)
	}
	return sb.String()
}

// RunPRIMLExample analyzes a PRIML example and returns the analysis.
func RunPRIMLExample(src string) (*priml.Analysis, error) {
	prog, err := priml.Parse(src)
	if err != nil {
		return nil, err
	}
	return priml.NewAnalyzer(priml.DefaultOptions()).Analyze(prog)
}

// TableII renders the Table II simulation (explicit leakage, Example 1).
func TableII() (string, error) {
	res, err := RunPRIMLExample(Example1PRIML)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Table II — simulation of PrivacyScope detecting explicit leakage\n")
	sb.WriteString(res.Trace.Render())
	for _, f := range res.Findings {
		fmt.Fprintf(&sb, "finding: %s\n", f.Message)
	}
	return sb.String(), nil
}

// TableIII renders the Table III simulation (implicit leakage, Example 2).
func TableIII() (string, error) {
	res, err := RunPRIMLExample(Example2PRIML)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Table III — simulation of PrivacyScope detecting implicit leakage\n")
	sb.WriteString(res.Trace.Render())
	for _, f := range res.Findings {
		fmt.Fprintf(&sb, "finding: %s\n", f.Message)
	}
	return sb.String(), nil
}

// TableIV runs the Listing 1 exploration with tracing and renders the
// explored states.
func TableIV() (string, error) {
	file, err := minic.Parse(Listing1C)
	if err != nil {
		return "", err
	}
	opts := symexec.DefaultOptions()
	opts.TrackTrace = true
	engine := symexec.New(file, opts)
	res, err := engine.AnalyzeFunction(context.Background(), "enclave_process_data", []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Table IV — symbolic exploration of Listing 1\n")
	sb.WriteString(res.Trace.Render())
	fmt.Fprintf(&sb, "paths: %d, states: %d, regions: %d\n", len(res.Paths), res.States, res.Regions)
	return sb.String(), nil
}

// Box1 renders the warning report for Listing 1.
func Box1() (string, error) {
	file, err := minic.Parse(Listing1C)
	if err != nil {
		return "", err
	}
	report, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), file, "enclave_process_data",
		[]symexec.ParamSpec{
			{Name: "secrets", Class: symexec.ParamSecret},
			{Name: "output", Class: symexec.ParamOut},
		})
	if err != nil {
		return "", err
	}
	return report.Render(), nil
}

// TableVRow is one measured row of the performance table, extended with the
// engine-level counter snapshot of the run (states explored, solver queries
// issued, infeasible paths pruned, solver-cache hits).
type TableVRow struct {
	Name          string
	LoC           int
	PaperLoC      int
	Seconds       float64
	PaperSeconds  float64
	Findings      int
	Paths         int
	States        int64
	SolverQueries int64
	PathsPruned   int64
	CacheHits     int64
}

// TableV analyzes the three ML modules and measures wall-clock analysis
// time, the paper's Table V metric, plus the engine counters per module.
func TableV() ([]TableVRow, error) {
	var rows []TableVRow
	for _, m := range mlsuite.Modules() {
		row := TableVRow{
			Name:         m.Name,
			LoC:          mlsuite.CountLoC(m.C),
			PaperLoC:     m.PaperLoC,
			PaperSeconds: m.PaperSeconds,
		}
		file, err := minic.Parse(m.C)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		iface, err := edl.Parse(m.EDL)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		metrics := obs.NewMetrics()
		opts := core.DefaultOptions()
		opts.Observer = metrics
		start := time.Now()
		for _, ecall := range m.ECalls {
			sig, ok := iface.ECall(ecall)
			if !ok {
				return nil, fmt.Errorf("%s: no ECALL %s", m.Name, ecall)
			}
			report, err := core.New(opts).CheckFunction(context.Background(), file, ecall, edl.ParamSpecs(sig, nil))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", m.Name, ecall, err)
			}
			row.Findings += len(report.Findings)
			row.Paths += report.Paths
		}
		row.Seconds = time.Since(start).Seconds()
		row.States = metrics.Counter("symexec.states")
		row.SolverQueries = metrics.Counter("solver.queries")
		row.PathsPruned = metrics.Counter("symexec.paths.pruned")
		row.CacheHits = metrics.Counter("solver.cache.hits")
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTableV formats the measured rows next to the paper's numbers.
func RenderTableV(rows []TableVRow) string {
	var sb strings.Builder
	sb.WriteString("Table V — performance evaluation (paper vs. measured)\n")
	sb.WriteString(fmt.Sprintf("%-18s %9s %9s %12s %14s %9s %7s %8s %8s %7s %7s\n",
		"Module", "LoC", "paperLoC", "time(s)", "paper-time(s)", "findings", "paths",
		"states", "queries", "pruned", "cached"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-18s %9d %9d %12.6f %14.3f %9d %7d %8d %8d %7d %7d\n",
			r.Name, r.LoC, r.PaperLoC, r.Seconds, r.PaperSeconds, r.Findings, r.Paths,
			r.States, r.SolverQueries, r.PathsPruned, r.CacheHits))
	}
	return sb.String()
}

// TableVICell is one verdict of the detection matrix.
type TableVICell struct {
	Analysis string
	Case     string
	Flagged  bool
}

// tableVISuite is the shared leak benchmark (same shapes as the baseline
// package's tests).
var tableVISuite = []struct{ name, src string }{
	{"explicit", `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + 4;
    return 0;
}`},
	{"implicit", `
int f(int *secrets, int *output) {
    if (secrets[0] == 19) { output[0] = 0; }
    else { output[0] = 1; }
    return 0;
}`},
	{"masked-ml", `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + secrets[1] + secrets[2];
    return 0;
}`},
	{"clean", `
int f(int *secrets, int *output) {
    output[0] = 42;
    return 0;
}`},
}

func tableVIParams() []symexec.ParamSpec {
	return []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
}

// TableVI runs PrivacyScope and both baselines over the shared suite.
func TableVI() ([]TableVICell, error) {
	var cells []TableVICell
	for _, tc := range tableVISuite {
		file, err := minic.Parse(tc.src)
		if err != nil {
			return nil, err
		}
		ps, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), file, "f", tableVIParams())
		if err != nil {
			return nil, err
		}
		cells = append(cells, TableVICell{"PrivacyScope (NonRev)", tc.name, !ps.Secure()})

		ni, err := baseline.NewNoninterference(symexec.DefaultOptions()).Check(file, "f", tableVIParams())
		if err != nil {
			return nil, err
		}
		cells = append(cells, TableVICell{"Noninterference", tc.name, !ni.Secure()})

		dfa, err := baseline.NewDFATaint().Check(file, "f", tableVIParams())
		if err != nil {
			return nil, err
		}
		cells = append(cells, TableVICell{"DFA taint (path-insens.)", tc.name, !dfa.Secure()})

		ts, err := baseline.NewTypeSystem().Check(file, "f", tableVIParams())
		if err != nil {
			return nil, err
		}
		cells = append(cells, TableVICell{"Security type system", tc.name, !ts.Secure()})
	}
	return cells, nil
}

// RenderTableVI formats the detection matrix.
func RenderTableVI(cells []TableVICell) string {
	byAnalysis := map[string]map[string]bool{}
	var analyses []string
	for _, c := range cells {
		if byAnalysis[c.Analysis] == nil {
			byAnalysis[c.Analysis] = map[string]bool{}
			analyses = append(analyses, c.Analysis)
		}
		byAnalysis[c.Analysis][c.Case] = c.Flagged
	}
	var sb strings.Builder
	sb.WriteString("Table VI — measured detection matrix (✓ = flagged)\n")
	sb.WriteString(fmt.Sprintf("%-26s %9s %9s %10s %7s\n", "Analysis", "explicit", "implicit", "masked-ml", "clean"))
	mark := func(b bool) string {
		if b {
			return "✓"
		}
		return "·"
	}
	for _, a := range analyses {
		m := byAnalysis[a]
		sb.WriteString(fmt.Sprintf("%-26s %9s %9s %10s %7s\n",
			a, mark(m["explicit"]), mark(m["implicit"]), mark(m["masked-ml"]), mark(m["clean"])))
	}
	sb.WriteString("desired: PrivacyScope flags explicit+implicit only; noninterference and the\n")
	sb.WriteString("security type system also reject the masked ML aggregate (the paper's\n")
	sb.WriteString("motivation); path-insensitive DFA taint misses the implicit leak.\n")
	return sb.String()
}

// CaseStudies runs §VI-D-1 (Recommender, 6 violations) and §VI-D-2
// (Kmeans injection) and renders the outcome.
func CaseStudies() (string, error) {
	var sb strings.Builder
	sb.WriteString("Case study 1 (§VI-D-1) — Recommender pre-existing violations\n")
	total := 0
	recFile, err := minic.Parse(mlsuite.RecommenderC)
	if err != nil {
		return "", err
	}
	recIface, err := edl.Parse(mlsuite.RecommenderEDL)
	if err != nil {
		return "", err
	}
	for _, ecall := range mlsuite.RecommenderECalls {
		sig, _ := recIface.ECall(ecall)
		report, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), recFile, ecall, edl.ParamSpecs(sig, nil))
		if err != nil {
			return "", err
		}
		total += len(report.Findings)
		for _, f := range report.Findings {
			fmt.Fprintf(&sb, "  [%s] %s\n", ecall, f.Message)
		}
	}
	fmt.Fprintf(&sb, "  total: %d violations (paper: 6)\n\n", total)

	sb.WriteString("Case study 2 (§VI-D-2) — injected leakage in Kmeans\n")
	evilFile, err := minic.Parse(mlsuite.MaliciousKmeansC)
	if err != nil {
		return "", err
	}
	evilIface, err := edl.Parse(mlsuite.MaliciousKmeansEDL)
	if err != nil {
		return "", err
	}
	sig, _ := evilIface.ECall("enclave_train_kmeans")
	report, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), evilFile, "enclave_train_kmeans", edl.ParamSpecs(sig, nil))
	if err != nil {
		return "", err
	}
	for _, f := range report.Findings {
		if f.Where == "centroids[4]" || f.Where == "centroids[5]" {
			fmt.Fprintf(&sb, "  [injected, detected] %s\n", f.Message)
		}
	}
	return sb.String(), nil
}

// AblationRow is one ablation measurement.
type AblationRow struct {
	Name     string
	Config   string
	Paths    int
	Findings int
	Seconds  float64
}

// Ablations exercises the design-choice switches DESIGN.md calls out.
func Ablations() ([]AblationRow, error) {
	var rows []AblationRow
	run := func(name, config string, opts core.Options, src, fn string, params []symexec.ParamSpec) error {
		file, err := minic.Parse(src)
		if err != nil {
			return err
		}
		start := time.Now()
		report, err := core.New(opts).CheckFunction(context.Background(), file, fn, params)
		if err != nil {
			return err
		}
		rows = append(rows, AblationRow{
			Name: name, Config: config,
			Paths: report.Paths, Findings: len(report.Findings),
			Seconds: time.Since(start).Seconds(),
		})
		return nil
	}
	params := tableVIParams()

	// Implicit check on/off over Listing 1.
	on := core.DefaultOptions()
	off := core.DefaultOptions()
	off.ImplicitCheck = false
	if err := run("implicit-check", "on", on, Listing1C, "enclave_process_data", []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret}, {Name: "output", Class: symexec.ParamOut},
	}); err != nil {
		return nil, err
	}
	if err := run("implicit-check", "off", off, Listing1C, "enclave_process_data", []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret}, {Name: "output", Class: symexec.ParamOut},
	}); err != nil {
		return nil, err
	}

	// Solver pruning on/off over a contradictory-branch program.
	pruneSrc := `
int f(int *secrets, int *output) {
    int a = secrets[0];
    if (a > 0) {
        if (a < 0) { output[0] = a; } else { output[0] = 0; }
    } else { output[0] = 0; }
    return 0;
}`
	pruned := core.DefaultOptions()
	unpruned := core.DefaultOptions()
	unpruned.Engine.PruneInfeasible = false
	if err := run("solver-pruning", "on", pruned, pruneSrc, "f", params); err != nil {
		return nil, err
	}
	if err := run("solver-pruning", "off", unpruned, pruneSrc, "f", params); err != nil {
		return nil, err
	}

	// Loop-bound sweep over a symbolic-bound loop.
	loopSrc := `
int f(int *secrets, int n, int *output) {
    int i = 0;
    while (i < n) { i++; }
    output[0] = i;
    return 0;
}`
	loopParams := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "n", Class: symexec.ParamPublic},
		{Name: "output", Class: symexec.ParamOut},
	}
	for _, bound := range []int{2, 4, 8, 16} {
		opts := core.DefaultOptions()
		opts.Engine.LoopBound = bound
		if err := run("loop-bound", fmt.Sprintf("%d", bound), opts, loopSrc, "f", loopParams); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderAblations formats the ablation rows.
func RenderAblations(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablations — design-choice switches\n")
	sb.WriteString(fmt.Sprintf("%-16s %-8s %7s %9s %12s\n", "Ablation", "config", "paths", "findings", "time(s)"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-16s %-8s %7d %9d %12.6f\n", r.Name, r.Config, r.Paths, r.Findings, r.Seconds))
	}
	return sb.String()
}

// RunAll renders every experiment in order; cmd/benchreport prints it.
func RunAll() (string, error) {
	var sb strings.Builder
	sb.WriteString(Fig1LatticeTable())
	sb.WriteByte('\n')
	sb.WriteString(Fig2PropagationTable())
	sb.WriteByte('\n')
	for _, fn := range []func() (string, error){TableII, TableIII, TableIV, Box1, CaseStudies} {
		out, err := fn()
		if err != nil {
			return "", err
		}
		sb.WriteString(out)
		sb.WriteByte('\n')
	}
	rows, err := TableV()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderTableV(rows))
	sb.WriteByte('\n')
	cells, err := TableVI()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderTableVI(cells))
	sb.WriteByte('\n')
	ab, err := Ablations()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderAblations(ab))
	sb.WriteByte('\n')
	sc, err := Scalability()
	if err != nil {
		return "", err
	}
	deep, err := DeepKmeans()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderScalability(append(sc, deep)))
	sb.WriteString(fmt.Sprintf("(last row: Kmeans with ITERS=2 — %d paths through the full checker)\n", deep.Paths))
	sb.WriteByte('\n')
	ws, err := WorkerScaling()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderWorkerScaling(ws))
	sb.WriteByte('\n')
	fsRows, err := Failsoft()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderFailsoft(fsRows))
	sb.WriteByte('\n')
	bb, err := BatchBench()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderBatchBench(bb))
	sb.WriteByte('\n')
	sr, err := SummaryBench()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderSummaryBench(sr))
	sb.WriteByte('\n')
	dr, err := DetectorBench()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderDetectorBench(dr))
	return sb.String(), nil
}
