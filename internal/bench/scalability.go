package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"privacyscope/internal/core"
	"privacyscope/internal/minic"
	"privacyscope/internal/mlsuite"
	"privacyscope/internal/obs"
	"privacyscope/internal/symexec"
)

// This file implements the §VIII-C scalability study. The paper notes that
// "symbolic execution is known to have limitation on scalability" and that
// enclave code "will become larger in the future"; this harness quantifies
// the path explosion on synthetic enclaves with a growing number of
// sequential secret-dependent branches (2^n paths) and growing straight-
// line length (linear).

// ScalabilityProgram generates an enclave entry point with `branches`
// sequential secret-dependent branches and `straight` straight-line
// statements. Each branch writes different constants, so the analysis must
// keep the paths apart.
func ScalabilityProgram(branches, straight int) string {
	var sb strings.Builder
	sb.WriteString("int f(int *secrets, int *output) {\n")
	sb.WriteString("    int acc = 0;\n")
	for i := 0; i < straight; i++ {
		fmt.Fprintf(&sb, "    acc = acc + secrets[%d];\n", i%4)
	}
	for i := 0; i < branches; i++ {
		fmt.Fprintf(&sb, "    if (secrets[%d] > %d) { acc = acc + %d; } else { acc = acc - %d; }\n",
			i, i, i+1, i+1)
	}
	sb.WriteString("    output[0] = acc;\n")
	sb.WriteString("    return 0;\n")
	sb.WriteString("}\n")
	return sb.String()
}

// ScalabilityRow is one measurement of the study, with the solver-side
// counters that explain where exploration time goes.
type ScalabilityRow struct {
	Branches      int
	Straight      int
	Paths         int
	States        int
	SolverQueries int64
	PathsPruned   int64
	Seconds       float64
}

// Scalability sweeps branch counts (path explosion) and straight-line
// lengths (linear growth) and measures exploration size and time.
func Scalability() ([]ScalabilityRow, error) {
	var rows []ScalabilityRow
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
	measure := func(branches, straight int) (ScalabilityRow, error) {
		src := ScalabilityProgram(branches, straight)
		file, err := minic.Parse(src)
		if err != nil {
			return ScalabilityRow{}, err
		}
		metrics := obs.NewMetrics()
		opts := core.DefaultOptions()
		opts.ReplayWitness = false // measure pure exploration
		opts.Engine.MaxPaths = 1 << 12
		opts.Observer = metrics
		start := time.Now()
		report, err := core.New(opts).CheckFunction(context.Background(), file, "f", params)
		if err != nil {
			return ScalabilityRow{}, err
		}
		return ScalabilityRow{
			Branches: branches, Straight: straight,
			Paths: report.Paths, States: report.States,
			SolverQueries: metrics.Counter("solver.queries"),
			PathsPruned:   metrics.Counter("symexec.paths.pruned"),
			Seconds:       time.Since(start).Seconds(),
		}, nil
	}
	for _, branches := range []int{1, 2, 4, 6, 8, 10} {
		row, err := measure(branches, 4)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, straight := range []int{16, 64, 256} {
		row, err := measure(2, straight)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScalability formats the study.
func RenderScalability(rows []ScalabilityRow) string {
	var sb strings.Builder
	sb.WriteString("Scalability (§VIII-C) — path explosion vs. program size\n")
	sb.WriteString(fmt.Sprintf("%-9s %-9s %7s %8s %8s %7s %12s\n",
		"branches", "straight", "paths", "states", "queries", "pruned", "time(s)"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-9d %-9d %7d %8d %8d %7d %12.6f\n",
			r.Branches, r.Straight, r.Paths, r.States, r.SolverQueries, r.PathsPruned, r.Seconds))
	}
	sb.WriteString("paths double per secret branch (2^n); straight-line growth is linear —\n")
	sb.WriteString("the scalability limitation the paper acknowledges for symbolic execution.\n")
	return sb.String()
}

// DeepKmeansC is the Kmeans module with a second Lloyd iteration: the
// second assignment round branches on the (symbolic) updated centroids, so
// paths grow from 2^4 to ~2^8. A realistic instance of the §VIII-C
// concern, used by TestDeepKmeansScales / BenchmarkDeepKmeans.
func DeepKmeansC() string {
	return strings.Replace(mlsuite.KmeansC, "#define ITERS 1", "#define ITERS 2", 1)
}

// DeepKmeans measures the two-iteration Kmeans analysis.
func DeepKmeans() (ScalabilityRow, error) {
	file, err := minic.Parse(DeepKmeansC())
	if err != nil {
		return ScalabilityRow{}, err
	}
	metrics := obs.NewMetrics()
	opts := core.DefaultOptions()
	opts.ReplayWitness = false
	opts.Engine.MaxPaths = 1 << 12
	opts.Observer = metrics
	start := time.Now()
	report, err := core.New(opts).CheckFunction(context.Background(), file, "enclave_train_kmeans", []symexec.ParamSpec{
		{Name: "points", Class: symexec.ParamSecret},
		{Name: "centroids", Class: symexec.ParamOut},
	})
	if err != nil {
		return ScalabilityRow{}, err
	}
	return ScalabilityRow{
		Branches: 8, Straight: 0,
		Paths: report.Paths, States: report.States,
		SolverQueries: metrics.Counter("solver.queries"),
		PathsPruned:   metrics.Counter("symexec.paths.pruned"),
		Seconds:       time.Since(start).Seconds(),
	}, nil
}
