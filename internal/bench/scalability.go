package bench

import (
	"fmt"
	"strings"
	"time"

	"privacyscope/internal/core"
	"privacyscope/internal/minic"
	"privacyscope/internal/mlsuite"
	"privacyscope/internal/symexec"
)

// This file implements the §VIII-C scalability study. The paper notes that
// "symbolic execution is known to have limitation on scalability" and that
// enclave code "will become larger in the future"; this harness quantifies
// the path explosion on synthetic enclaves with a growing number of
// sequential secret-dependent branches (2^n paths) and growing straight-
// line length (linear).

// ScalabilityProgram generates an enclave entry point with `branches`
// sequential secret-dependent branches and `straight` straight-line
// statements. Each branch writes different constants, so the analysis must
// keep the paths apart.
func ScalabilityProgram(branches, straight int) string {
	var sb strings.Builder
	sb.WriteString("int f(int *secrets, int *output) {\n")
	sb.WriteString("    int acc = 0;\n")
	for i := 0; i < straight; i++ {
		fmt.Fprintf(&sb, "    acc = acc + secrets[%d];\n", i%4)
	}
	for i := 0; i < branches; i++ {
		fmt.Fprintf(&sb, "    if (secrets[%d] > %d) { acc = acc + %d; } else { acc = acc - %d; }\n",
			i, i, i+1, i+1)
	}
	sb.WriteString("    output[0] = acc;\n")
	sb.WriteString("    return 0;\n")
	sb.WriteString("}\n")
	return sb.String()
}

// ScalabilityRow is one measurement of the study.
type ScalabilityRow struct {
	Branches int
	Straight int
	Paths    int
	States   int
	Seconds  float64
}

// Scalability sweeps branch counts (path explosion) and straight-line
// lengths (linear growth) and measures exploration size and time.
func Scalability() ([]ScalabilityRow, error) {
	var rows []ScalabilityRow
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
	opts := core.DefaultOptions()
	opts.ReplayWitness = false // measure pure exploration
	opts.Engine.MaxPaths = 1 << 12

	for _, branches := range []int{1, 2, 4, 6, 8, 10} {
		src := ScalabilityProgram(branches, 4)
		file, err := minic.Parse(src)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		report, err := core.New(opts).CheckFunction(file, "f", params)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalabilityRow{
			Branches: branches, Straight: 4,
			Paths: report.Paths, States: report.States,
			Seconds: time.Since(start).Seconds(),
		})
	}
	for _, straight := range []int{16, 64, 256} {
		src := ScalabilityProgram(2, straight)
		file, err := minic.Parse(src)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		report, err := core.New(opts).CheckFunction(file, "f", params)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalabilityRow{
			Branches: 2, Straight: straight,
			Paths: report.Paths, States: report.States,
			Seconds: time.Since(start).Seconds(),
		})
	}
	return rows, nil
}

// RenderScalability formats the study.
func RenderScalability(rows []ScalabilityRow) string {
	var sb strings.Builder
	sb.WriteString("Scalability (§VIII-C) — path explosion vs. program size\n")
	sb.WriteString(fmt.Sprintf("%-9s %-9s %7s %8s %12s\n", "branches", "straight", "paths", "states", "time(s)"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-9d %-9d %7d %8d %12.6f\n",
			r.Branches, r.Straight, r.Paths, r.States, r.Seconds))
	}
	sb.WriteString("paths double per secret branch (2^n); straight-line growth is linear —\n")
	sb.WriteString("the scalability limitation the paper acknowledges for symbolic execution.\n")
	return sb.String()
}

// DeepKmeansC is the Kmeans module with a second Lloyd iteration: the
// second assignment round branches on the (symbolic) updated centroids, so
// paths grow from 2^4 to ~2^8. A realistic instance of the §VIII-C
// concern, used by TestDeepKmeansScales / BenchmarkDeepKmeans.
func DeepKmeansC() string {
	return strings.Replace(mlsuite.KmeansC, "#define ITERS 1", "#define ITERS 2", 1)
}

// DeepKmeans measures the two-iteration Kmeans analysis.
func DeepKmeans() (ScalabilityRow, error) {
	file, err := minic.Parse(DeepKmeansC())
	if err != nil {
		return ScalabilityRow{}, err
	}
	opts := core.DefaultOptions()
	opts.ReplayWitness = false
	opts.Engine.MaxPaths = 1 << 12
	start := time.Now()
	report, err := core.New(opts).CheckFunction(file, "enclave_train_kmeans", []symexec.ParamSpec{
		{Name: "points", Class: symexec.ParamSecret},
		{Name: "centroids", Class: symexec.ParamOut},
	})
	if err != nil {
		return ScalabilityRow{}, err
	}
	return ScalabilityRow{
		Branches: 8, Straight: 0,
		Paths: report.Paths, States: report.States,
		Seconds: time.Since(start).Seconds(),
	}, nil
}
