package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"privacyscope/internal/core"
	"privacyscope/internal/minic"
	"privacyscope/internal/mlsuite"
	"privacyscope/internal/obs"
	"privacyscope/internal/symexec"
)

// This file implements the §VIII-C scalability study. The paper notes that
// "symbolic execution is known to have limitation on scalability" and that
// enclave code "will become larger in the future"; this harness quantifies
// the path explosion on synthetic enclaves with a growing number of
// sequential secret-dependent branches (2^n paths) and growing straight-
// line length (linear).

// ScalabilityProgram generates an enclave entry point with `branches`
// sequential secret-dependent branches and `straight` straight-line
// statements. Each branch writes different constants, so the analysis must
// keep the paths apart.
func ScalabilityProgram(branches, straight int) string {
	var sb strings.Builder
	sb.WriteString("int f(int *secrets, int *output) {\n")
	sb.WriteString("    int acc = 0;\n")
	for i := 0; i < straight; i++ {
		fmt.Fprintf(&sb, "    acc = acc + secrets[%d];\n", i%4)
	}
	for i := 0; i < branches; i++ {
		fmt.Fprintf(&sb, "    if (secrets[%d] > %d) { acc = acc + %d; } else { acc = acc - %d; }\n",
			i, i, i+1, i+1)
	}
	sb.WriteString("    output[0] = acc;\n")
	sb.WriteString("    return 0;\n")
	sb.WriteString("}\n")
	return sb.String()
}

// ScalabilityRow is one measurement of the study, with the solver-side
// counters that explain where exploration time goes.
type ScalabilityRow struct {
	Branches      int
	Straight      int
	Paths         int
	States        int
	SolverQueries int64
	PathsPruned   int64
	Seconds       float64
}

// Scalability sweeps branch counts (path explosion) and straight-line
// lengths (linear growth) and measures exploration size and time.
func Scalability() ([]ScalabilityRow, error) {
	var rows []ScalabilityRow
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
	measure := func(branches, straight int) (ScalabilityRow, error) {
		src := ScalabilityProgram(branches, straight)
		file, err := minic.Parse(src)
		if err != nil {
			return ScalabilityRow{}, err
		}
		metrics := obs.NewMetrics()
		opts := core.DefaultOptions()
		opts.ReplayWitness = false // measure pure exploration
		opts.Engine.MaxPaths = 1 << 12
		opts.Observer = metrics
		start := time.Now()
		report, err := core.New(opts).CheckFunction(context.Background(), file, "f", params)
		if err != nil {
			return ScalabilityRow{}, err
		}
		return ScalabilityRow{
			Branches: branches, Straight: straight,
			Paths: report.Paths, States: report.States,
			SolverQueries: metrics.Counter("solver.queries"),
			PathsPruned:   metrics.Counter("symexec.paths.pruned"),
			Seconds:       time.Since(start).Seconds(),
		}, nil
	}
	for _, branches := range []int{1, 2, 4, 6, 8, 10} {
		row, err := measure(branches, 4)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, straight := range []int{16, 64, 256} {
		row, err := measure(2, straight)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScalability formats the study.
func RenderScalability(rows []ScalabilityRow) string {
	var sb strings.Builder
	sb.WriteString("Scalability (§VIII-C) — path explosion vs. program size\n")
	sb.WriteString(fmt.Sprintf("%-9s %-9s %7s %8s %8s %7s %12s\n",
		"branches", "straight", "paths", "states", "queries", "pruned", "time(s)"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-9d %-9d %7d %8d %8d %7d %12.6f\n",
			r.Branches, r.Straight, r.Paths, r.States, r.SolverQueries, r.PathsPruned, r.Seconds))
	}
	sb.WriteString("paths double per secret branch (2^n); straight-line growth is linear —\n")
	sb.WriteString("the scalability limitation the paper acknowledges for symbolic execution.\n")
	return sb.String()
}

// WorkerScalingRow is one measurement of the parallel path-exploration
// study: the same branch-heavy program analyzed with a growing worker pool.
type WorkerScalingRow struct {
	Workers  int
	Paths    int
	Findings int
	// Spawned counts branches handed to pool goroutines, Inline branches
	// kept on the requesting goroutine (pool full or first arm).
	Spawned int64
	Inline  int64
	Seconds float64
	// Speedup is sequential seconds / this row's seconds.
	Speedup float64
}

// WorkerScaling measures intra-function parallel path exploration
// (Options.PathWorkers) on the 2^10-path synthetic enclave: workers 1, 2, 4
// and 8 over an identical workload. Findings are deterministic across
// worker counts (pinned by the engine's fork-key ordering), so the findings
// column must read the same in every row.
func WorkerScaling() ([]WorkerScalingRow, error) {
	src := ScalabilityProgram(10, 4)
	file, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
	var rows []WorkerScalingRow
	for _, workers := range []int{1, 2, 4, 8} {
		metrics := obs.NewMetrics()
		opts := core.DefaultOptions()
		opts.ReplayWitness = false
		opts.Engine.MaxPaths = 1 << 12
		opts.Engine.PathWorkers = workers
		opts.Observer = metrics
		start := time.Now()
		report, err := core.New(opts).CheckFunction(context.Background(), file, "f", params)
		if err != nil {
			return nil, err
		}
		row := WorkerScalingRow{
			Workers:  workers,
			Paths:    report.Paths,
			Findings: len(report.Findings),
			Spawned:  metrics.Counter("symexec.workers.spawned"),
			Inline:   metrics.Counter("symexec.workers.inline"),
			Seconds:  time.Since(start).Seconds(),
		}
		if len(rows) > 0 {
			row.Speedup = rows[0].Seconds / row.Seconds
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderWorkerScaling formats the path-worker study.
func RenderWorkerScaling(rows []WorkerScalingRow) string {
	var sb strings.Builder
	sb.WriteString("Path-worker scaling — 2^10-path synthetic enclave, identical findings per row\n")
	sb.WriteString(fmt.Sprintf("%-8s %7s %9s %8s %7s %12s %8s\n",
		"workers", "paths", "findings", "spawned", "inline", "time(s)", "speedup"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-8d %7d %9d %8d %7d %12.6f %7.2fx\n",
			r.Workers, r.Paths, r.Findings, r.Spawned, r.Inline, r.Seconds, r.Speedup))
	}
	sb.WriteString("workers=1 is the sequential baseline; results are byte-identical across rows\n")
	sb.WriteString("(deterministic fork-key ordering), only wall-clock time may differ.\n")
	return sb.String()
}

// DeepKmeansC is the Kmeans module with a second Lloyd iteration: the
// second assignment round branches on the (symbolic) updated centroids, so
// paths grow from 2^4 to ~2^8. A realistic instance of the §VIII-C
// concern, used by TestDeepKmeansScales / BenchmarkDeepKmeans.
func DeepKmeansC() string {
	return strings.Replace(mlsuite.KmeansC, "#define ITERS 1", "#define ITERS 2", 1)
}

// DeepKmeans measures the two-iteration Kmeans analysis.
func DeepKmeans() (ScalabilityRow, error) {
	file, err := minic.Parse(DeepKmeansC())
	if err != nil {
		return ScalabilityRow{}, err
	}
	metrics := obs.NewMetrics()
	opts := core.DefaultOptions()
	opts.ReplayWitness = false
	opts.Engine.MaxPaths = 1 << 12
	opts.Observer = metrics
	start := time.Now()
	report, err := core.New(opts).CheckFunction(context.Background(), file, "enclave_train_kmeans", []symexec.ParamSpec{
		{Name: "points", Class: symexec.ParamSecret},
		{Name: "centroids", Class: symexec.ParamOut},
	})
	if err != nil {
		return ScalabilityRow{}, err
	}
	return ScalabilityRow{
		Branches: 8, Straight: 0,
		Paths: report.Paths, States: report.States,
		SolverQueries: metrics.Counter("solver.queries"),
		PathsPruned:   metrics.Counter("symexec.paths.pruned"),
		Seconds:       time.Since(start).Seconds(),
	}, nil
}
