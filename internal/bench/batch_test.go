package bench

import "testing"

// TestBatchBenchShape pins the incremental-rerun acceptance on the bench
// harness itself: the warm rerun pays zero engine analyses, and the
// one-modified rerun pays at least 5× fewer than cold, with the savings on
// the disk-hit counters.
func TestBatchBenchShape(t *testing.T) {
	rows, err := BatchBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byMode := map[string]BatchBenchRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	cold, warm, mod := byMode["cold"], byMode["warm"], byMode["warm-1-modified"]
	if cold.EngineAnalyses != int64(cold.Units) || cold.DiskHits != 0 {
		t.Errorf("cold row = %+v, want every unit analyzed, zero hits", cold)
	}
	if warm.EngineAnalyses != 0 || warm.DiskHits != int64(warm.Units) {
		t.Errorf("warm row = %+v, want zero analyses, every unit a hit", warm)
	}
	if mod.EngineAnalyses != 1 || mod.DiskHits != int64(mod.Units-1) {
		t.Errorf("warm-1-modified row = %+v, want 1 analysis, units-1 hits", mod)
	}
	if cold.EngineAnalyses < 5*mod.EngineAnalyses {
		t.Errorf("cold/modified analysis ratio %d/%d < 5×", cold.EngineAnalyses, mod.EngineAnalyses)
	}
}
