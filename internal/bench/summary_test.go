package bench

import "testing"

// TestSummaryBenchShape pins the call-graph study's acceptance: both
// configurations agree with the inline oracle (SummaryBench errors on
// divergence), every helper is summarized exactly once, and the summary run
// beats inline by at least 2× on the call-graph-heavy module — the
// headline number of the compositional-analysis PR.
func TestSummaryBenchShape(t *testing.T) {
	rows, err := SummaryBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.SummariesComputed != int64(r.Helpers) {
			t.Errorf("%s: computed %d summaries, want one per helper (%d)",
				r.Name, r.SummariesComputed, r.Helpers)
		}
		if r.Findings == 0 {
			t.Errorf("%s: no findings — the secret chain should leak", r.Name)
		}
		if r.Paths < 2*r.Entries {
			t.Errorf("%s: %d paths over %d entries, want the secret branch to fork", r.Name, r.Paths, r.Entries)
		}
	}
	// The shared-helpers configuration is the acceptance row: three entry
	// points re-inline the same doubling chain on every path, while the
	// summary run pays the chain once. The expected ratio is far above 2×,
	// so the assertion holds with margin on loaded hosts.
	shared := rows[1]
	if shared.SpeedupVsInline < 2 {
		t.Errorf("shared-helpers speedup %.2fx < 2x (inline %.4fs, summary %.4fs)",
			shared.SpeedupVsInline, shared.InlineSeconds, shared.SummarySeconds)
	}
}
