package bench

import (
	"fmt"
	"strings"
	"time"

	"privacyscope"
	"privacyscope/internal/obs"
)

// SummaryBenchRow is one configuration of the call-graph study: the same
// module analyzed inline (every call re-explored at every call site on every
// path) and with compositional summaries (every helper explored once). The
// engine columns are mode-invariant by construction — summary mode is
// byte-identical to inline — so a single set of deterministic counters
// describes both runs; only the wall clocks differ.
type SummaryBenchRow struct {
	// Name of the generated call graph ("deep-chain", "shared-helpers").
	Name string `json:"name"`
	// Helpers in the chain and Entries sharing it.
	Helpers int `json:"helpers"`
	Entries int `json:"entries"`
	// Findings/Paths/States are identical across both modes (checked).
	Findings int `json:"findings"`
	Paths    int `json:"paths"`
	States   int `json:"states"`
	// SummariesComputed is the summary.computed counter of the summary run:
	// one bottom-up scratch exploration per helper, shared by every call
	// site and every entry point.
	SummariesComputed int64 `json:"summariesComputed"`
	// InlineSeconds/SummarySeconds are the two wall clocks;
	// SpeedupVsInline is their ratio (host-dependent: a timing column).
	InlineSeconds   float64 `json:"inlineSeconds"`
	SummarySeconds  float64 `json:"summarySeconds"`
	SpeedupVsInline float64 `json:"speedupVsInline"`
}

// SummaryBenchProgram generates the call-graph-heavy module: a chain of
// pure helpers h0..h{depth-1} where each level runs a concrete loop and
// calls the previous level twice — inlining the top of the chain costs
// 2^depth-1 call expansions while a summary build pays the chain once
// bottom-up — shared across `entries` ECALLs that each route secrets
// through the chain on both arms of a secret branch. The b-b trick keeps
// the *result* expression compact (the duplicate subtree folds to 0), so
// the two modes differ in exploration work, not in downstream checker
// work on a ballooning output expression.
func SummaryBenchProgram(depth, entries int) (cSrc, edlSrc string) {
	var c strings.Builder
	c.WriteString(`int h0(int x)
{
    int acc = x;
    int i = 0;
    while (i < 6) { acc = acc + 3; i = i + 1; }
    return acc;
}
`)
	for i := 1; i < depth; i++ {
		fmt.Fprintf(&c, `int h%d(int x)
{
    int acc = x;
    int i = 0;
    while (i < 6) { acc = acc + 3; i = i + 1; }
    int a = h%d(acc);
    int b = h%d(acc + 2);
    return a + (b - b);
}
`, i, i-1, i-1)
	}
	top := depth - 1
	var e strings.Builder
	e.WriteString("enclave {\n    trusted {\n")
	for i := 0; i < entries; i++ {
		fmt.Fprintf(&c, `
int enclave_e%d(int *secrets, int *output)
{
    int acc = h%d(secrets[0]);
    if (secrets[1] > 0)
        acc = acc + h%d(secrets[2]);
    else
        acc = acc + h%d(acc);
    output[0] = acc;
    return 0;
}
`, i, top, top, top)
		fmt.Fprintf(&e, "        public int enclave_e%d([in] int *secrets, [out] int *output);\n", i)
	}
	e.WriteString("    };\n};\n")
	return c.String(), e.String()
}

// SummaryBench measures inline vs. summary call resolution over generated
// call-graph-heavy modules and checks the two modes agree on every
// deterministic engine column before reporting.
func SummaryBench() ([]SummaryBenchRow, error) {
	configs := []struct {
		name             string
		helpers, entries int
	}{
		{"deep-chain", 9, 1},
		{"shared-helpers", 9, 4},
	}
	var rows []SummaryBenchRow
	for _, cf := range configs {
		cSrc, edlSrc := SummaryBenchProgram(cf.helpers, cf.entries)

		start := time.Now()
		inline, err := privacyscope.AnalyzeEnclave(cSrc, edlSrc)
		if err != nil {
			return nil, fmt.Errorf("%s inline: %w", cf.name, err)
		}
		inlineSec := time.Since(start).Seconds()

		metrics := obs.NewMetrics()
		start = time.Now()
		sum, err := privacyscope.AnalyzeEnclave(cSrc, edlSrc,
			privacyscope.WithSummaries(), privacyscope.WithObserver(metrics))
		if err != nil {
			return nil, fmt.Errorf("%s summaries: %w", cf.name, err)
		}
		sumSec := time.Since(start).Seconds()

		row := SummaryBenchRow{
			Name:              cf.name,
			Helpers:           cf.helpers,
			Entries:           cf.entries,
			Findings:          inline.TotalFindings(),
			SummariesComputed: metrics.Counter("summary.computed"),
			InlineSeconds:     inlineSec,
			SummarySeconds:    sumSec,
		}
		if sumSec > 0 {
			row.SpeedupVsInline = inlineSec / sumSec
		}
		for _, r := range inline.Reports {
			row.Paths += r.Paths
			row.States += r.States
		}
		// Differential guard: the bench is only meaningful while summary
		// mode stays byte-identical to the inline oracle.
		sumPaths, sumStates := 0, 0
		for _, r := range sum.Reports {
			sumPaths += r.Paths
			sumStates += r.States
		}
		if sum.TotalFindings() != row.Findings || sumPaths != row.Paths || sumStates != row.States {
			return nil, fmt.Errorf("%s: summary mode diverged from inline (findings %d/%d, paths %d/%d, states %d/%d)",
				cf.name, sum.TotalFindings(), row.Findings, sumPaths, row.Paths, sumStates, row.States)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSummaryBench formats the call-graph study.
func RenderSummaryBench(rows []SummaryBenchRow) string {
	var sb strings.Builder
	sb.WriteString("Summary vs. inline call resolution — call-graph-heavy modules\n")
	sb.WriteString(fmt.Sprintf("%-16s %8s %8s %9s %7s %8s %10s %12s %12s %9s\n",
		"Module", "helpers", "entries", "findings", "paths", "states", "summaries",
		"inline(s)", "summary(s)", "speedup"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-16s %8d %8d %9d %7d %8d %10d %12.6f %12.6f %8.1fx\n",
			r.Name, r.Helpers, r.Entries, r.Findings, r.Paths, r.States,
			r.SummariesComputed, r.InlineSeconds, r.SummarySeconds, r.SpeedupVsInline))
	}
	sb.WriteString("(helpers form a doubling call chain: inlining the top costs 2^n call\n")
	sb.WriteString("expansions per call site per path; a summary pays the chain once)\n")
	return sb.String()
}
