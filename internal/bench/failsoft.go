package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"privacyscope/internal/core"
	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
	"privacyscope/internal/symexec"
)

// This file measures the fail-soft degradation modes (docs/ROBUSTNESS.md):
// the same deliberately over-budget module analyzed under a path budget, a
// step budget, and a wall-clock deadline. Where the pre-robustness analyzer
// aborted with an error, each run now returns the paths it completed plus
// an explicit Coverage record and an Inconclusive verdict — quantifying
// what a truncated exploration still buys.

// FailsoftRow is one degraded-mode measurement.
type FailsoftRow struct {
	Mode      string // which budget was exhausted
	Verdict   string
	Reason    string // coverage truncation reason
	Completed int    // paths completed before the cut
	StepsUsed int
	Degraded  int64 // check.degraded counter
	Seconds   float64
}

// Failsoft analyzes a 2^10-path module under three budgets sized so each
// run is cut early, and records the degraded outcome of each.
func Failsoft() ([]FailsoftRow, error) {
	src := ScalabilityProgram(10, 4) // 1024 paths, far over every budget below
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
	measure := func(mode string, tune func(*core.Options)) (FailsoftRow, error) {
		file, err := minic.Parse(src)
		if err != nil {
			return FailsoftRow{}, err
		}
		metrics := obs.NewMetrics()
		opts := core.DefaultOptions()
		opts.ReplayWitness = false
		opts.Observer = metrics
		tune(&opts)
		start := time.Now()
		report, err := core.New(opts).CheckFunction(context.Background(), file, "f", params)
		if err != nil {
			return FailsoftRow{}, fmt.Errorf("%s: budget exhaustion must degrade, not fail: %w", mode, err)
		}
		return FailsoftRow{
			Mode:      mode,
			Verdict:   report.Verdict().String(),
			Reason:    string(report.Coverage.Reason),
			Completed: report.Coverage.CompletedPaths,
			StepsUsed: report.Coverage.StepsUsed,
			Degraded:  metrics.Counter("check.degraded"),
			Seconds:   time.Since(start).Seconds(),
		}, nil
	}
	var rows []FailsoftRow
	row, err := measure("path-budget", func(o *core.Options) { o.Engine.MaxPaths = 32 })
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	row, err = measure("step-budget", func(o *core.Options) { o.Engine.MaxSteps = 2000 })
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	row, err = measure("deadline", func(o *core.Options) { o.Deadline = time.Nanosecond })
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// RenderFailsoft formats the degraded-mode table.
func RenderFailsoft(rows []FailsoftRow) string {
	var sb strings.Builder
	sb.WriteString("Fail-soft degradation — over-budget module (1024 paths) under three cuts\n")
	sb.WriteString(fmt.Sprintf("%-12s %-13s %-12s %10s %10s %9s %12s\n",
		"mode", "verdict", "reason", "completed", "steps", "degraded", "time(s)"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-12s %-13s %-12s %10d %10d %9d %12.6f\n",
			r.Mode, r.Verdict, r.Reason, r.Completed, r.StepsUsed, r.Degraded, r.Seconds))
	}
	sb.WriteString("every cut keeps its completed paths and reports Inconclusive instead of\n")
	sb.WriteString("erroring — a truncated run never claims the module is secure.\n")
	return sb.String()
}
