package solver

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"privacyscope/internal/obs"
	"privacyscope/internal/sym"
)

// Result is the solver's three-valued verdict on a path condition.
type Result int

// Verdicts. Unknown means the solver could not decide; callers treating the
// path as feasible stay sound (no feasible path is pruned).
const (
	Unsat Result = iota + 1
	Sat
	Unknown
)

// String names the verdict.
func (r Result) String() string {
	switch r {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	default:
		return "unknown"
	}
}

// interval is a closed float64 interval with optional excluded points
// (from != constraints).
type interval struct {
	lo, hi   float64
	excluded map[float64]bool
	isInt    bool
}

func fullInterval() *interval {
	return &interval{lo: math.Inf(-1), hi: math.Inf(1), excluded: make(map[float64]bool)}
}

func (iv *interval) empty() bool {
	if iv.lo > iv.hi {
		return true
	}
	if iv.isInt {
		lo, hi := math.Ceil(iv.lo), math.Floor(iv.hi)
		if lo > hi {
			return true
		}
		// A finite integer interval fully covered by exclusions is empty.
		if hi-lo < 64 {
			for v := lo; v <= hi; v++ {
				if !iv.excluded[v] {
					return false
				}
			}
			return true
		}
	}
	if iv.lo == iv.hi && iv.excluded[iv.lo] {
		return true
	}
	return false
}

// clampLo raises the lower bound.
func (iv *interval) clampLo(v float64) bool {
	if v > iv.lo {
		iv.lo = v
		return true
	}
	return false
}

// clampHi lowers the upper bound.
func (iv *interval) clampHi(v float64) bool {
	if v < iv.hi {
		iv.hi = v
		return true
	}
	return false
}

// feasCacheCap bounds the memoization map so adversarially branchy inputs
// cannot grow it without limit; at the cap an arbitrary entry is evicted
// per insert (counted as solver.cache.evicted), so recent conditions — the
// ones the engine is about to re-derive — stay warm. A var, not a const,
// so tests can shrink it.
var feasCacheCap = 1 << 16

// Solver decides satisfiability of path conditions via affine
// normalization plus interval propagation over the symbols. The zero value
// is ready to use.
//
// Feasibility verdicts are memoized per canonicalized path condition: the
// engine re-derives the same prefix condition at every statement of a
// branch's suite, so sibling queries hit the cache (counters
// solver.cache.hits / solver.cache.misses make the win measurable).
type Solver struct {
	obs obs.Observer
	itn *sym.Interner // optional: canonicalizes solver-built negations

	mu   sync.Mutex
	feas map[string]bool // canonical π → (propagate != Unsat)

	// atoms caches the normalized constraint per interned conjunct: the
	// engine re-checks the same prefix conjuncts at every statement of a
	// branch's suite, and without the cache each check re-runs affine
	// extraction (the profiled hot spot). Keys are canonical *sym* nodes —
	// pointer identity is structural identity — so the cache is bounded by
	// the arena and needs no eviction; non-interned atoms are analyzed
	// fresh each time, which keeps the cache sound with interning off.
	atoms sync.Map // sym.Expr (canonical) → *atomInfo
}

// SetInterner hands the solver the engine's intern arena so the negations
// it synthesizes while flattening conjuncts are canonical too (and thus
// hit the per-atom cache). Call before the first query; a nil arena (or
// never calling this) keeps the solver fully structural.
func (s *Solver) SetInterner(in *sym.Interner) { s.itn = in }

// New returns a Solver.
func New() *Solver { return &Solver{} }

// NewObserved returns a Solver reporting query and cache counters to o.
func NewObserved(o obs.Observer) *Solver { return &Solver{obs: obs.Or(o)} }

// o returns the observer, keeping the zero-value Solver usable.
func (s *Solver) o() obs.Observer { return obs.Or(s.obs) }

// canonicalKey renders π order-independently: the sorted keys of its
// conjuncts. Two conditions with the same conjunct set — regardless of the
// order branches were taken in — share one cache entry. Interned conjuncts
// use their arena ID ("#<id>", cheap and collision-free by construction);
// everything else falls back to the structural Merkle key. The prefixes
// are disjoint, so the two schemes never alias.
func canonicalKey(pc *PathCondition) string {
	keys := make([]string, len(pc.conj))
	for i, c := range pc.conj {
		if id, ok := sym.InternID(c); ok {
			keys[i] = "#" + strconv.FormatUint(id, 36)
		} else {
			keys[i] = sym.Key(c)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, "&")
}

// Check returns Unsat when the conjunction is provably unsatisfiable, Sat
// when interval propagation finds a verified model, and Unknown otherwise.
func (s *Solver) Check(pc *PathCondition) Result {
	s.o().Add("solver.queries", 1)
	ivs, res := s.propagate(pc)
	if res == Unsat {
		s.o().Add("solver.unsat", 1)
		return Unsat
	}
	if _, ok := s.model(pc, ivs); ok {
		s.o().Add("solver.sat", 1)
		return Sat
	}
	s.o().Add("solver.unknown", 1)
	return Unknown
}

// Feasible reports whether the path may be satisfiable (everything except a
// proven Unsat). This is the engine's pruning predicate: sound, possibly
// exploring a few infeasible paths. It runs interval propagation only — the
// model search of Check would be wasted work on the hot pruning path — and
// memoizes the verdict per canonical condition.
func (s *Solver) Feasible(pc *PathCondition) bool {
	s.o().Add("solver.queries", 1)
	key := canonicalKey(pc)
	s.mu.Lock()
	cached, hit := s.feas[key]
	s.mu.Unlock()
	if hit {
		s.o().Add("solver.cache.hits", 1)
		if !cached {
			s.o().Add("solver.unsat", 1)
		}
		return cached
	}
	s.o().Add("solver.cache.misses", 1)
	_, res := s.propagate(pc)
	ok := res != Unsat
	if !ok {
		s.o().Add("solver.unsat", 1)
	}
	s.mu.Lock()
	if s.feas == nil {
		s.feas = make(map[string]bool)
	}
	if len(s.feas) >= feasCacheCap {
		// Evict one arbitrary entry. Map iteration order varies, so over
		// many inserts this approximates random replacement — cheap, O(1),
		// and immune to the scan-wipeout worst case of LRU under the
		// engine's breadth-first condition churn.
		for k := range s.feas {
			delete(s.feas, k)
			s.o().Add("solver.cache.evicted", 1)
			break
		}
	}
	s.feas[key] = ok
	s.mu.Unlock()
	return ok
}

// Model attempts to produce a concrete binding of all symbols in pc (plus
// any extra symbols supplied) that satisfies every conjunct. Used by the
// checker to construct replayable leak witnesses.
func (s *Solver) Model(pc *PathCondition, extra []*sym.Symbol) (sym.Binding, bool) {
	s.o().Add("solver.queries", 1)
	ivs, res := s.propagate(pc)
	if res == Unsat {
		return nil, false
	}
	b, ok := s.model(pc, ivs)
	if !ok {
		return nil, false
	}
	for _, x := range extra {
		if _, bound := b[x.ID]; !bound {
			b[x.ID] = sym.IntVal(0)
		}
	}
	return b, true
}

// propagate runs interval propagation to a fixpoint (bounded rounds) and
// returns the per-symbol intervals, or Unsat if a contradiction is proven.
func (s *Solver) propagate(pc *PathCondition) (map[int]*interval, Result) {
	ivs := make(map[int]*interval)
	get := func(sm *sym.Symbol) *interval {
		iv, ok := ivs[sm.ID]
		if !ok {
			iv = fullInterval()
			iv.isInt = true // symbols range over 32-bit ints by default
			iv.clampLo(math.MinInt32)
			iv.clampHi(math.MaxInt32)
			ivs[sm.ID] = iv
		}
		return iv
	}

	atoms := s.flatten(pc.Conjuncts())
	for round := 0; round < 8; round++ {
		changed := false
		for _, a := range atoms {
			switch s.applyAtom(a, get) {
			case atomUnsat:
				return ivs, Unsat
			case atomChanged:
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, iv := range ivs {
		if iv.empty() {
			return ivs, Unsat
		}
	}
	return ivs, Unknown
}

// flatten splits top-level && conjuncts and strips double negation. The
// negations it builds go through the intern arena (when attached) so they
// share identity with engine-built atoms and stay cacheable.
func (s *Solver) flatten(conj []sym.Expr) []sym.Expr {
	var out []sym.Expr
	var walk func(e sym.Expr)
	walk = func(e sym.Expr) {
		if b, ok := e.(*sym.Binary); ok && b.Op == sym.OpLAnd {
			walk(b.L)
			walk(b.R)
			return
		}
		if u, ok := e.(*sym.Unary); ok && u.Op == sym.OpLNot {
			out = append(out, s.itn.Negate(u.X))
			return
		}
		out = append(out, e)
	}
	for _, e := range conj {
		walk(e)
	}
	return out
}

type atomResult int

const (
	atomNoop atomResult = iota
	atomChanged
	atomUnsat
)

// atomKind classifies what a conjunct contributes to propagation.
type atomKind int

const (
	atomOpaque atomKind = iota // no usable interval information
	atomFalse                  // constant-false conjunct: immediately unsat
	atomBound                  // single-symbol affine comparison s OP c
)

// atomInfo is the normalized, input-independent part of applyAtom — the
// expensive half (affine extraction, coefficient normalization) that is a
// pure function of the conjunct and therefore cacheable per canonical node.
type atomInfo struct {
	kind atomKind
	sm   *sym.Symbol
	op   sym.Op // flipped already if the coefficient was negative
	c    float64
}

var opaqueAtom = &atomInfo{kind: atomOpaque}
var falseAtom = &atomInfo{kind: atomFalse}

// analyzeAtom normalizes one boolean conjunct to its interval contribution.
func analyzeAtom(e sym.Expr) *atomInfo {
	// Constant conjuncts decide immediately.
	if c, ok := e.(sym.IntConst); ok {
		if c.V == 0 {
			return falseAtom
		}
		return opaqueAtom
	}
	b, ok := e.(*sym.Binary)
	if !ok || !b.Op.IsComparison() {
		return opaqueAtom // opaque conjunct; stay sound by ignoring it
	}
	// Normalize to (L - R) OP 0 as an affine form.
	diff := sym.ExtractAffine(&sym.Binary{Op: sym.OpSub, L: b.L, R: b.R})
	if diff == nil {
		return opaqueAtom
	}
	if diff.IsConstant() {
		if constHolds(b.Op, diff.Const) {
			return opaqueAtom
		}
		return falseAtom
	}
	syms := diff.Symbols()
	if len(syms) != 1 {
		return opaqueAtom
	}
	sm := syms[0]
	a := diff.Coef[sm.ID]
	c := -diff.Const / a // a·s + const OP 0  ⇒  s OP' c
	op := b.Op
	if a < 0 {
		op = flipOp(op)
	}
	return &atomInfo{kind: atomBound, sm: sm, op: op, c: c}
}

// atomInfoFor analyzes e, memoizing per canonical node. Interned atoms are
// immutable and pointer-unique, so the sync.Map read path is lock-free and
// a racing duplicate Store is idempotent.
func (s *Solver) atomInfoFor(e sym.Expr) *atomInfo {
	if !sym.Interned(e) {
		return analyzeAtom(e)
	}
	if v, ok := s.atoms.Load(e); ok {
		return v.(*atomInfo)
	}
	info := analyzeAtom(e)
	s.atoms.Store(e, info)
	return info
}

// applyAtom interprets one boolean conjunct, tightening intervals where the
// conjunct is a comparison of an affine form over a single symbol.
func (s *Solver) applyAtom(e sym.Expr, get func(*sym.Symbol) *interval) atomResult {
	info := s.atomInfoFor(e)
	if info.kind == atomFalse {
		return atomUnsat
	}
	if info.kind == atomOpaque {
		return atomNoop
	}
	sm, op, c := info.sm, info.op, info.c
	iv := get(sm)
	changed := false
	switch op {
	case sym.OpEq:
		changed = iv.clampLo(c) || changed
		changed = iv.clampHi(c) || changed
	case sym.OpNe:
		if !iv.excluded[c] {
			iv.excluded[c] = true
			changed = true
		}
	case sym.OpLt:
		bound := c
		if iv.isInt {
			bound = math.Ceil(c) - 1
		}
		changed = iv.clampHi(bound)
	case sym.OpLe:
		bound := c
		if iv.isInt {
			bound = math.Floor(c)
		}
		changed = iv.clampHi(bound)
	case sym.OpGt:
		bound := c
		if iv.isInt {
			bound = math.Floor(c) + 1
		}
		changed = iv.clampLo(bound)
	case sym.OpGe:
		bound := c
		if iv.isInt {
			bound = math.Ceil(c)
		}
		changed = iv.clampLo(bound)
	}
	if iv.empty() {
		return atomUnsat
	}
	if changed {
		return atomChanged
	}
	return atomNoop
}

func constHolds(op sym.Op, d float64) bool {
	switch op {
	case sym.OpEq:
		return d == 0
	case sym.OpNe:
		return d != 0
	case sym.OpLt:
		return d < 0
	case sym.OpLe:
		return d <= 0
	case sym.OpGt:
		return d > 0
	case sym.OpGe:
		return d >= 0
	}
	return true
}

func flipOp(op sym.Op) sym.Op {
	switch op {
	case sym.OpLt:
		return sym.OpGt
	case sym.OpLe:
		return sym.OpGe
	case sym.OpGt:
		return sym.OpLt
	case sym.OpGe:
		return sym.OpLe
	default:
		return op
	}
}

// model picks candidate values within the propagated intervals and verifies
// them against every conjunct, with a small amount of per-symbol candidate
// search.
func (s *Solver) model(pc *PathCondition, ivs map[int]*interval) (sym.Binding, bool) {
	var symbols []*sym.Symbol
	seen := make(map[int]bool)
	for _, e := range pc.Conjuncts() {
		for _, sm := range sym.FreeSymbols(e) {
			if !seen[sm.ID] {
				seen[sm.ID] = true
				symbols = append(symbols, sm)
			}
		}
	}
	binding := make(sym.Binding, len(symbols))
	budget := searchBudget
	if try(pc, symbols, ivs, binding, 0, &budget) {
		return binding, true
	}
	return nil, false
}

// searchBudget bounds the candidate combinations the model search tries;
// without it, many nonlinear symbols make the DFS exponential.
const searchBudget = 4096

// try assigns candidates to symbols[idx:] depth-first; verifies once all
// symbols are bound.
func try(pc *PathCondition, symbols []*sym.Symbol, ivs map[int]*interval, b sym.Binding, idx int, budget *int) bool {
	if *budget <= 0 {
		return false
	}
	if idx == len(symbols) {
		*budget--
		return verify(pc, b)
	}
	sm := symbols[idx]
	for _, cand := range candidates(ivs[sm.ID]) {
		b[sm.ID] = sym.IntVal(cand)
		if try(pc, symbols, ivs, b, idx+1, budget) {
			return true
		}
		if *budget <= 0 {
			break
		}
	}
	delete(b, sm.ID)
	return false
}

// candidates enumerates a handful of values inside the interval, skipping
// excluded points.
func candidates(iv *interval) []int32 {
	if iv == nil {
		return []int32{0, 1, -1, 2}
	}
	lo := clampToInt32(math.Ceil(iv.lo))
	hi := clampToInt32(math.Floor(iv.hi))
	if lo > hi {
		return nil
	}
	// Small magnitudes first: witness replays prefer values that stay
	// clear of narrow-type wraparound.
	raw := []int64{0, 1, -1, 2, -2, int64(lo), int64(hi), int64(lo) + 1, int64(hi) - 1, (int64(lo) + int64(hi)) / 2}
	var out []int32
	seenC := make(map[int64]bool)
	for _, v := range raw {
		if v < int64(lo) || v > int64(hi) || seenC[v] || iv.excluded[float64(v)] {
			continue
		}
		seenC[v] = true
		out = append(out, int32(v))
	}
	// If every candidate is excluded, scan a short window.
	if len(out) == 0 {
		for v := int64(lo); v <= int64(hi) && v < int64(lo)+256; v++ {
			if !iv.excluded[float64(v)] {
				out = append(out, int32(v))
				break
			}
		}
	}
	return out
}

func clampToInt32(v float64) int32 {
	if v < math.MinInt32 {
		return math.MinInt32
	}
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(v)
}

// verify evaluates every conjunct under the binding.
func verify(pc *PathCondition, b sym.Binding) bool {
	for _, e := range pc.Conjuncts() {
		v, err := sym.Eval(e, b)
		if err != nil || v.IsZero() {
			return false
		}
	}
	return true
}
