package solver

import (
	"testing"

	"privacyscope/internal/obs"
	"privacyscope/internal/sym"
)

func TestFeasibleMemoization(t *testing.T) {
	b := newBuilder()
	s1 := b.FreshSecret("s1")
	m := obs.NewMetrics()
	sv := NewObserved(m)

	pc := True().And(cmp(sym.OpGt, s1, sym.IntConst{V: 0}))
	if !sv.Feasible(pc) {
		t.Fatal("s1 > 0 must be feasible")
	}
	if !sv.Feasible(pc) {
		t.Fatal("cached verdict must agree")
	}
	if hits := m.Counter("solver.cache.hits"); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if misses := m.Counter("solver.cache.misses"); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
	if q := m.Counter("solver.queries"); q != 2 {
		t.Errorf("queries = %d, want 2", q)
	}

	// Unsat verdicts are memoized too, and counted each time they prune.
	contra := pc.And(cmp(sym.OpLt, s1, sym.IntConst{V: 0}))
	for i := 0; i < 2; i++ {
		if sv.Feasible(contra) {
			t.Fatal("s1 > 0 ∧ s1 < 0 must be infeasible")
		}
	}
	if unsat := m.Counter("solver.unsat"); unsat != 2 {
		t.Errorf("unsat = %d, want 2", unsat)
	}
}

// TestFeasibleCacheOrderIndependent pins the canonicalization: the same
// conjunct set reached through a different branch order shares one entry.
func TestFeasibleCacheOrderIndependent(t *testing.T) {
	b := newBuilder()
	s1 := b.FreshSecret("s1")
	s2 := b.FreshSecret("s2")
	a := cmp(sym.OpGt, s1, sym.IntConst{V: 0})
	c := cmp(sym.OpLt, s2, sym.IntConst{V: 10})

	m := obs.NewMetrics()
	sv := NewObserved(m)
	sv.Feasible(True().And(a).And(c))
	sv.Feasible(True().And(c).And(a))
	if hits := m.Counter("solver.cache.hits"); hits != 1 {
		t.Errorf("cache hits = %d, want 1 (order-independent key)", hits)
	}
}

// TestZeroValueSolverStillWorks guards the documented zero-value contract
// after the observer and cache fields were added.
func TestZeroValueSolverStillWorks(t *testing.T) {
	b := newBuilder()
	s1 := b.FreshSecret("s1")
	var sv Solver
	pc := True().And(cmp(sym.OpEq, s1, sym.IntConst{V: 3}))
	if !sv.Feasible(pc) {
		t.Error("zero-value solver must stay usable")
	}
	if sv.Check(pc) != Sat {
		t.Error("zero-value Check must find the model")
	}
}

// TestFeasibleCacheEviction pins the bounded-cache contract: at the cap,
// inserts evict rather than stop recording, the counter reports every
// eviction, and the map never exceeds the cap.
func TestFeasibleCacheEviction(t *testing.T) {
	old := feasCacheCap
	feasCacheCap = 4
	defer func() { feasCacheCap = old }()

	b := newBuilder()
	s1 := b.FreshSecret("s1")
	m := obs.NewMetrics()
	sv := NewObserved(m)

	const inserts = 10
	for i := 0; i < inserts; i++ {
		pc := True().And(cmp(sym.OpGt, s1, sym.IntConst{V: int32(i)}))
		if !sv.Feasible(pc) {
			t.Fatalf("s1 > %d must be feasible", i)
		}
	}
	sv.mu.Lock()
	size := len(sv.feas)
	sv.mu.Unlock()
	if size > feasCacheCap {
		t.Errorf("cache size %d exceeds cap %d", size, feasCacheCap)
	}
	if ev := m.Counter("solver.cache.evicted"); ev != inserts-int64(feasCacheCap) {
		t.Errorf("evicted = %d, want %d", ev, inserts-feasCacheCap)
	}
	// New conditions are still recorded after the cap was reached: a repeat
	// of the most recent insert must hit.
	pc := True().And(cmp(sym.OpGt, s1, sym.IntConst{V: inserts - 1}))
	hitsBefore := m.Counter("solver.cache.hits")
	sv.Feasible(pc)
	if m.Counter("solver.cache.hits") != hitsBefore+1 {
		t.Error("most recent insert must still be cached after evictions")
	}
}

func TestCheckCountsVerdicts(t *testing.T) {
	b := newBuilder()
	s1 := b.FreshSecret("s1")
	m := obs.NewMetrics()
	sv := NewObserved(m)
	sv.Check(True().And(cmp(sym.OpEq, s1, sym.IntConst{V: 5})))
	sv.Check(True().
		And(cmp(sym.OpGt, s1, sym.IntConst{V: 0})).
		And(cmp(sym.OpLt, s1, sym.IntConst{V: 0})))
	if m.Counter("solver.sat") != 1 || m.Counter("solver.unsat") != 1 {
		t.Errorf("sat=%d unsat=%d, want 1/1",
			m.Counter("solver.sat"), m.Counter("solver.unsat"))
	}
}
