package solver

import (
	"testing"
	"testing/quick"
	"time"

	"privacyscope/internal/sym"
	"privacyscope/internal/taint"
)

func newBuilder() *sym.Builder {
	var alloc taint.Allocator
	return sym.NewBuilder(&alloc)
}

func cmp(op sym.Op, l, r sym.Expr) sym.Expr { return &sym.Binary{Op: op, L: l, R: r} }

func TestPathConditionBasics(t *testing.T) {
	b := newBuilder()
	s := b.FreshSecret("")
	pc := True()
	if pc.String() != "True" || pc.Len() != 0 {
		t.Errorf("empty pc = %q/%d", pc.String(), pc.Len())
	}
	pc2 := pc.And(cmp(sym.OpEq, s, sym.IntConst{V: 19}))
	if pc2.Len() != 1 {
		t.Errorf("Len after And = %d", pc2.Len())
	}
	if pc.Len() != 0 {
		t.Error("And must be persistent")
	}
	if pc2.String() != "s1 == 19" {
		t.Errorf("String = %q", pc2.String())
	}
	// Constant-true conjuncts are dropped.
	if pc.And(sym.IntConst{V: 1}).Len() != 0 {
		t.Error("true conjunct must be dropped")
	}
}

func TestNegateLast(t *testing.T) {
	b := newBuilder()
	s := b.FreshSecret("")
	pc := True().And(cmp(sym.OpEq, s, sym.IntConst{V: 0}))
	neg := pc.NegateLast()
	if neg.String() != "s1 != 0" {
		t.Errorf("NegateLast = %q", neg.String())
	}
	if pc.String() != "s1 == 0" {
		t.Error("NegateLast must not mutate the original")
	}
	if True().NegateLast().Len() != 0 {
		t.Error("NegateLast of empty pc must be a no-op")
	}
}

func TestPathConditionTaint(t *testing.T) {
	b := newBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")
	pub := b.FreshPublic("p")

	if !True().Taint().IsBottom() {
		t.Error("empty π must be ⊥")
	}
	one := True().And(cmp(sym.OpEq, s1, sym.IntConst{V: 3}))
	if !one.Taint().Equal(taint.Single(s1.Tag)) {
		t.Errorf("π taint = %v, want t1", one.Taint())
	}
	two := one.And(cmp(sym.OpGt, s2, sym.IntConst{V: 0}))
	if !two.Taint().IsTop() {
		t.Errorf("π with two secrets = %v, want ⊤", two.Taint())
	}
	pubOnly := True().And(cmp(sym.OpGt, pub, sym.IntConst{V: 0}))
	if !pubOnly.Taint().IsBottom() {
		t.Error("public-only π must be ⊥")
	}
	if got := two.SecretTags(); len(got) != 2 {
		t.Errorf("SecretTags = %v", got)
	}
}

func TestCheckSatisfiable(t *testing.T) {
	b := newBuilder()
	s := b.FreshSecret("")
	sv := New()

	tests := []struct {
		name string
		pc   *PathCondition
		want Result
	}{
		{"empty", True(), Sat},
		{"eq", True().And(cmp(sym.OpEq, s, sym.IntConst{V: 19})), Sat},
		{"range", True().And(cmp(sym.OpGt, s, sym.IntConst{V: 0})).And(cmp(sym.OpLt, s, sym.IntConst{V: 10})), Sat},
		{"ne", True().And(cmp(sym.OpNe, s, sym.IntConst{V: 0})), Sat},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := sv.Check(tt.pc); got != tt.want {
				t.Errorf("Check = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCheckUnsatisfiable(t *testing.T) {
	b := newBuilder()
	s := b.FreshSecret("")
	sv := New()

	tests := []struct {
		name string
		pc   *PathCondition
	}{
		{"const-false", True().And(sym.IntConst{V: 0})},
		{"eq-conflict", True().And(cmp(sym.OpEq, s, sym.IntConst{V: 1})).And(cmp(sym.OpEq, s, sym.IntConst{V: 2}))},
		{"lt-gt-conflict", True().And(cmp(sym.OpLt, s, sym.IntConst{V: 0})).And(cmp(sym.OpGt, s, sym.IntConst{V: 10}))},
		{"eq-ne-conflict", True().And(cmp(sym.OpEq, s, sym.IntConst{V: 5})).And(cmp(sym.OpNe, s, sym.IntConst{V: 5}))},
		{"empty-int-window", True().And(cmp(sym.OpGt, s, sym.IntConst{V: 3})).And(cmp(sym.OpLt, s, sym.IntConst{V: 4}))},
		{"affine-conflict", True().
			And(cmp(sym.OpEq, sym.NewBinary(sym.OpMul, sym.IntConst{V: 2}, s), sym.IntConst{V: 8})).
			And(cmp(sym.OpNe, s, sym.IntConst{V: 4}))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := sv.Check(tt.pc); got != Unsat {
				t.Errorf("Check = %v, want unsat", got)
			}
			if sv.Feasible(tt.pc) {
				t.Error("Feasible must be false for unsat")
			}
		})
	}
}

func TestCheckNegativeCoefficient(t *testing.T) {
	b := newBuilder()
	s := b.FreshSecret("")
	sv := New()
	// -s > 0 ∧ s > 0 is unsat.
	pc := True().
		And(cmp(sym.OpGt, &sym.Unary{Op: sym.OpNeg, X: s}, sym.IntConst{V: 0})).
		And(cmp(sym.OpGt, s, sym.IntConst{V: 0}))
	if got := sv.Check(pc); got != Unsat {
		t.Errorf("Check = %v, want unsat", got)
	}
}

func TestFeasibleIsSoundOnOpaque(t *testing.T) {
	b := newBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")
	sv := New()
	// Non-linear conjunct: s1*s2 == 6. The solver cannot decide it but
	// must not claim unsat.
	pc := True().And(cmp(sym.OpEq, &sym.Binary{Op: sym.OpMul, L: s1, R: s2}, sym.IntConst{V: 6}))
	if !sv.Feasible(pc) {
		t.Error("opaque conjunct must stay feasible")
	}
}

func TestModel(t *testing.T) {
	b := newBuilder()
	s := b.FreshSecret("")
	sv := New()

	pc := True().
		And(cmp(sym.OpGe, s, sym.IntConst{V: 10})).
		And(cmp(sym.OpLe, s, sym.IntConst{V: 12})).
		And(cmp(sym.OpNe, s, sym.IntConst{V: 10}))
	m, ok := sv.Model(pc, nil)
	if !ok {
		t.Fatal("Model failed on sat pc")
	}
	v := m[s.ID]
	if v.AsInt() < 10 || v.AsInt() > 12 || v.AsInt() == 10 {
		t.Errorf("model value = %v", v)
	}

	if _, ok := sv.Model(True().And(sym.IntConst{V: 0}), nil); ok {
		t.Error("Model must fail on unsat pc")
	}
}

func TestModelBindsExtras(t *testing.T) {
	b := newBuilder()
	s := b.FreshSecret("")
	other := b.FreshSecret("")
	sv := New()
	pc := True().And(cmp(sym.OpEq, s, sym.IntConst{V: 3}))
	m, ok := sv.Model(pc, []*sym.Symbol{other})
	if !ok {
		t.Fatal("Model failed")
	}
	if _, bound := m[other.ID]; !bound {
		t.Error("extra symbol must receive a binding")
	}
}

func TestModelMultiSymbol(t *testing.T) {
	b := newBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")
	sv := New()
	pc := True().
		And(cmp(sym.OpEq, s1, sym.IntConst{V: 7})).
		And(cmp(sym.OpGt, s2, sym.IntConst{V: 100}))
	m, ok := sv.Model(pc, nil)
	if !ok {
		t.Fatal("Model failed")
	}
	if m[s1.ID].AsInt() != 7 || m[s2.ID].AsInt() <= 100 {
		t.Errorf("model = %v", m)
	}
}

func TestFlattenHandlesLAndAndLNot(t *testing.T) {
	b := newBuilder()
	s := b.FreshSecret("")
	sv := New()
	// (s > 0 && s < 5) ∧ !(s == 2) is sat with model in {1,3,4}.
	conj := &sym.Binary{
		Op: sym.OpLAnd,
		L:  cmp(sym.OpGt, s, sym.IntConst{V: 0}),
		R:  cmp(sym.OpLt, s, sym.IntConst{V: 5}),
	}
	not := &sym.Unary{Op: sym.OpLNot, X: cmp(sym.OpEq, s, sym.IntConst{V: 2})}
	pc := True().And(conj).And(not)
	m, ok := sv.Model(pc, nil)
	if !ok {
		t.Fatal("Model failed")
	}
	v := m[s.ID].AsInt()
	if v <= 0 || v >= 5 || v == 2 {
		t.Errorf("model = %d", v)
	}
	// And the unsat variant: exclude the whole window.
	pc2 := True().And(conj).
		And(cmp(sym.OpNe, s, sym.IntConst{V: 1})).
		And(cmp(sym.OpNe, s, sym.IntConst{V: 2})).
		And(cmp(sym.OpNe, s, sym.IntConst{V: 3})).
		And(cmp(sym.OpNe, s, sym.IntConst{V: 4}))
	if got := sv.Check(pc2); got != Unsat {
		t.Errorf("fully excluded window: Check = %v, want unsat", got)
	}
}

func TestResultString(t *testing.T) {
	if Unsat.String() != "unsat" || Sat.String() != "sat" || Unknown.String() != "unknown" {
		t.Error("Result String wrong")
	}
}

// Property: a model returned by the solver always satisfies the condition
// it was derived from.
func TestModelAlwaysVerifies(t *testing.T) {
	sv := New()
	f := func(lo, hi int16, ex int16) bool {
		b := newBuilder()
		s := b.FreshSecret("")
		pc := True().
			And(cmp(sym.OpGe, s, sym.IntConst{V: int32(lo)})).
			And(cmp(sym.OpLe, s, sym.IntConst{V: int32(hi)})).
			And(cmp(sym.OpNe, s, sym.IntConst{V: int32(ex)}))
		m, ok := sv.Model(pc, nil)
		if !ok {
			// Must genuinely be unsat-ish: empty window or window == {ex}.
			return int32(lo) > int32(hi) || (lo == hi && lo == ex)
		}
		for _, e := range pc.Conjuncts() {
			v, err := sym.Eval(e, m)
			if err != nil || v.IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Check never returns Unsat for an equality pinning a symbol to
// an arbitrary representable constant.
func TestPointEqualityAlwaysSat(t *testing.T) {
	sv := New()
	f := func(v int32) bool {
		b := newBuilder()
		s := b.FreshSecret("")
		pc := True().And(cmp(sym.OpEq, s, sym.IntConst{V: v}))
		return sv.Check(pc) == Sat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFeasibleSkipsModelSearch(t *testing.T) {
	// A conjunction of opaque (non-linear) constraints over many symbols
	// must be decided as feasible quickly — Feasible never runs the
	// model search.
	b := newBuilder()
	sv := New()
	pc := True()
	for i := 0; i < 12; i++ {
		s1 := b.FreshSecret("")
		s2 := b.FreshSecret("")
		pc = pc.And(cmp(sym.OpGt, &sym.Binary{Op: sym.OpMul, L: s1, R: s2}, sym.IntConst{V: int32(i)}))
	}
	start := time.Now()
	if !sv.Feasible(pc) {
		t.Error("opaque conjunction must stay feasible")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("Feasible took %v; model search must not run", elapsed)
	}
}

func TestModelSearchBudget(t *testing.T) {
	// Many nonlinear symbols: the model search must give up within its
	// budget rather than exploring the full candidate product.
	b := newBuilder()
	sv := New()
	pc := True()
	var syms []*sym.Symbol
	for i := 0; i < 10; i++ {
		s1 := b.FreshSecret("")
		s2 := b.FreshSecret("")
		syms = append(syms, s1, s2)
		// s1*s2 == large odd prime-ish value: no small-candidate model.
		pc = pc.And(cmp(sym.OpEq, &sym.Binary{Op: sym.OpMul, L: s1, R: s2}, sym.IntConst{V: 99991}))
	}
	start := time.Now()
	_, ok := sv.Model(pc, syms)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Model took %v; budget not enforced", elapsed)
	}
	_ = ok // either verdict is acceptable; termination is the property
}

func TestCheckFlipsAllComparisonOps(t *testing.T) {
	b := newBuilder()
	sv := New()
	s := b.FreshSecret("")
	neg := sym.NewBinary(sym.OpMul, sym.IntConst{V: -2}, s)
	tests := []struct {
		name  string
		pc    *PathCondition
		unsat bool
	}{
		// -2s < -10 ⇒ s > 5; combined with s < 3 → unsat.
		{"lt-flip", True().And(cmp(sym.OpLt, neg, sym.IntConst{V: -10})).And(cmp(sym.OpLt, s, sym.IntConst{V: 3})), true},
		// -2s <= -10 ⇒ s >= 5; with s == 5 → sat.
		{"le-flip", True().And(cmp(sym.OpLe, neg, sym.IntConst{V: -10})).And(cmp(sym.OpEq, s, sym.IntConst{V: 5})), false},
		// -2s >= 10 ⇒ s <= -5; with s > 0 → unsat.
		{"ge-flip", True().And(cmp(sym.OpGe, neg, sym.IntConst{V: 10})).And(cmp(sym.OpGt, s, sym.IntConst{V: 0})), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := sv.Check(tt.pc)
			if tt.unsat && got != Unsat {
				t.Errorf("Check = %v, want unsat", got)
			}
			if !tt.unsat && got == Unsat {
				t.Errorf("Check = unsat, want sat/unknown")
			}
		})
	}
}

func TestConstantConjunctVerdicts(t *testing.T) {
	sv := New()
	// Comparisons that fold: 3 < 5 is dropped at And (constant true after
	// folding), 5 < 3 folds to 0 and makes the pc unsat.
	pcTrue := True().And(sym.NewBinary(sym.OpLt, sym.IntConst{V: 3}, sym.IntConst{V: 5}))
	if sv.Check(pcTrue) != Sat {
		t.Error("trivially true pc must be sat")
	}
	pcFalse := True().And(sym.NewBinary(sym.OpLt, sym.IntConst{V: 5}, sym.IntConst{V: 3}))
	if sv.Check(pcFalse) != Unsat {
		t.Error("trivially false pc must be unsat")
	}
}
