// Package solver implements the path-condition store π and a lightweight
// constraint solver for the symbolic execution engine.
//
// The solver plays the role of the Clang Static Analyzer's range constraint
// manager in the paper's prototype: it decides (soundly but incompletely)
// whether a conjunction of branch conditions is satisfiable, so the engine
// can prune infeasible paths, and it can produce a concrete model of a path
// condition, which the checker uses to replay leak witnesses.
package solver

import (
	"strings"

	"privacyscope/internal/sym"
	"privacyscope/internal/taint"
)

// PathCondition is π: an ordered conjunction of boolean-position symbolic
// expressions. The zero value is the empty (True) condition. Values are
// persistent: And returns a new condition sharing the prefix, so forked
// states alias safely.
type PathCondition struct {
	conj []sym.Expr
}

// True returns the empty path condition.
func True() *PathCondition { return &PathCondition{} }

// And returns pc ∧ e. Constant-true conjuncts are dropped.
func (pc *PathCondition) And(e sym.Expr) *PathCondition {
	if c, ok := e.(sym.IntConst); ok && c.V != 0 {
		return pc
	}
	next := make([]sym.Expr, len(pc.conj), len(pc.conj)+1)
	copy(next, pc.conj)
	return &PathCondition{conj: append(next, e)}
}

// NegateLast returns a copy of pc with its most recent conjunct negated —
// the ¬ operator of the paper's PS-FCOND rule, which "negates the most
// recent added path constraint in π". Returns pc unchanged when empty.
func (pc *PathCondition) NegateLast() *PathCondition {
	if len(pc.conj) == 0 {
		return pc
	}
	next := make([]sym.Expr, len(pc.conj))
	copy(next, pc.conj)
	next[len(next)-1] = sym.Negate(next[len(next)-1])
	return &PathCondition{conj: next}
}

// Conjuncts returns the conjunction's terms in order.
func (pc *PathCondition) Conjuncts() []sym.Expr {
	out := make([]sym.Expr, len(pc.conj))
	copy(out, pc.conj)
	return out
}

// Len returns the number of conjuncts.
func (pc *PathCondition) Len() int { return len(pc.conj) }

// SecretTags returns the distinct secret tags appearing anywhere in π.
func (pc *PathCondition) SecretTags() []taint.Tag {
	var tags []taint.Tag
	seen := make(map[taint.Tag]bool)
	for _, e := range pc.conj {
		for _, tag := range sym.SecretTags(e) {
			if !seen[tag] {
				seen[tag] = true
				tags = append(tags, tag)
			}
		}
	}
	return tags
}

// Taint returns the join of the taint labels of all conjuncts — the taint
// status τΔ[π] of the path condition, which Alg. 1 consults for implicit
// leak detection. Derived directly from free secret symbols.
func (pc *PathCondition) Taint() taint.Label {
	return taint.FromTags(pc.SecretTags())
}

// String renders π as in Table IV: "True" when empty, otherwise the
// conjunction joined with " ∧ ".
func (pc *PathCondition) String() string {
	if len(pc.conj) == 0 {
		return "True"
	}
	parts := make([]string, len(pc.conj))
	for i, e := range pc.conj {
		parts[i] = trimParens(e.String())
	}
	return strings.Join(parts, " ∧ ")
}

// trimParens drops one redundant outer parenthesis pair for readability.
func trimParens(s string) string {
	if len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
		depth := 0
		for i := 0; i < len(s)-1; i++ {
			switch s[i] {
			case '(':
				depth++
			case ')':
				depth--
			}
			if depth == 0 {
				return s // closes before the end; outer pair not redundant
			}
		}
		return s[1 : len(s)-1]
	}
	return s
}
