package core

import (
	"context"
	"fmt"
	"time"

	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/symexec"
	"privacyscope/internal/taint"
)

// Options configures the checker.
type Options struct {
	// Engine configures the underlying symbolic execution engine.
	Engine symexec.Options
	// ReplayWitness constructs and concretely replays a two-run witness
	// for every explicit finding with an exact affine inversion.
	ReplayWitness bool
	// ImplicitCheck enables the hashmap-hm implicit detection (ablation
	// switch; on in DefaultOptions).
	ImplicitCheck bool
	// KnownInputs lists secret display names the attacker is assumed to
	// know (the §VIII-B prior-knowledge extension). A sink masked only
	// by known inputs is reported as a prior-knowledge leak.
	KnownInputs []string
	// TimingCheck enables the §VIII-A extension: compare the abstract
	// execution cost of paths that differ only in one secret's branch
	// constraints. Off by default — timing is explicitly out of the
	// paper's core scope.
	TimingCheck bool
	// ProbabilisticCheck enables the §VIII-A probabilistic channel: an
	// observable single-secret value masked only by in-enclave entropy
	// is reported (its distribution reveals the secret). Off by default
	// — the paper's threat model covers deterministic leakage only, and
	// entropy genuinely blocks deterministic recovery.
	ProbabilisticCheck bool
	// Deadline bounds each CheckFunction call's wall-clock time. When it
	// expires mid-exploration the checker returns the paths completed so
	// far with an Inconclusive verdict instead of an error. Zero means no
	// per-function deadline (the caller's context still applies).
	Deadline time.Duration
	// Observer receives checker telemetry: per-phase spans
	// (check/symexec, check/explicit, check/implicit, check/witness),
	// findings-by-kind counters, and — threaded into Engine and the
	// solver unless Engine.Obs is already set — the engine-level
	// counters. Nil means the no-op observer.
	Observer obs.Observer
}

// DefaultOptions returns the standard checker configuration.
func DefaultOptions() Options {
	return Options{
		Engine:        symexec.DefaultOptions(),
		ReplayWitness: true,
		ImplicitCheck: true,
	}
}

// Checker detects nonreversibility violations in MiniC enclave code.
type Checker struct {
	opts Options
	sv   *solver.Solver
	obs  obs.Observer
}

// New returns a checker.
func New(opts Options) *Checker {
	o := obs.Or(opts.Observer)
	if opts.Engine.Obs == nil {
		opts.Engine.Obs = o
	}
	return &Checker{opts: opts, sv: solver.NewObserved(o), obs: o}
}

// CheckFunction analyzes one entry point of the file under the given
// parameter classification and returns the leak report.
//
// The analysis is fail-soft: budget exhaustion, a Deadline expiry or a ctx
// cancellation degrade the report (partial Coverage, Inconclusive verdict
// when nothing was found on the explored paths) instead of returning an
// error. Errors are reserved for genuine failures such as an unknown entry
// point.
func (c *Checker) CheckFunction(ctx context.Context, file *minic.File, fn string, params []symexec.ParamSpec) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Deadline)
		defer cancel()
	}
	start := time.Now()
	c.obs.Event("check.start", obs.F("function", fn))
	span := c.obs.StartSpan("check")
	span.Annotate(obs.F("function", fn))
	defer span.End()

	sx := span.Child("symexec")
	engine := symexec.New(file, c.opts.Engine)
	res, err := engine.AnalyzeFunction(ctx, fn, params)
	if res != nil {
		sx.Annotate(
			obs.F("paths", fmt.Sprint(len(res.Paths))),
			obs.F("states", fmt.Sprint(res.States)))
	}
	sx.End()
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", fn, err)
	}
	report := &Report{
		Function: fn,
		Paths:    len(res.Paths),
		States:   res.States,
		Regions:  res.Regions,
		Secrets:  len(res.SecretSymbols),
		Coverage: res.Coverage,
		Warnings: res.Warnings,
	}
	if res.Coverage.Truncated {
		c.obs.Add("check.degraded", 1)
		span.Annotate(obs.F("truncated", string(res.Coverage.Reason)))
		switch res.Coverage.Reason {
		case symexec.TruncCancelled, symexec.TruncDeadline:
			c.obs.Add("check.cancelled", 1)
		case symexec.TruncInlineDepth, symexec.TruncSummaryHavoc:
			// A skipped call or a havoc'd summary under-approximates the
			// program itself (not just the path space): obligations the
			// elided callee carried — OCALL sinks, declassifies — went
			// unchecked. The engine's warnings name them; the counter
			// separates this structural degradation from budget exhaustion.
			c.obs.Add("check.underapprox", 1)
		}
	}
	run := &checkRun{checker: c, file: file, res: res, report: report, known: c.knownIDs(res)}

	ph := span.Child("explicit")
	run.explicitChecks(file, params)
	ph.End()
	if c.opts.ImplicitCheck {
		ph = span.Child("implicit")
		run.implicitChecks()
		ph.End()
	}
	if c.opts.TimingCheck {
		ph = span.Child("timing")
		run.timingChecks()
		ph.End()
	}
	sortFindings(report.Findings)
	report.Duration = time.Since(start)
	for _, f := range report.Findings {
		c.obs.Add("core.findings."+f.Kind.String(), 1)
	}
	span.Annotate(
		obs.F("findings", fmt.Sprint(len(report.Findings))),
		obs.F("verdict", report.Verdict().String()))
	c.obs.Event("check.done",
		obs.F("function", fn),
		obs.F("findings", fmt.Sprint(len(report.Findings))),
		obs.F("verdict", report.Verdict().String()))
	return report, nil
}

// knownIDs resolves the KnownInputs display names to symbol IDs.
func (c *Checker) knownIDs(res *symexec.Result) map[int]bool {
	known := make(map[int]bool)
	for _, name := range c.opts.KnownInputs {
		if s, ok := res.SecretSymbols[name]; ok {
			known[s.ID] = true
		}
	}
	return known
}

type checkRun struct {
	checker *Checker
	file    *minic.File
	res     *symexec.Result
	report  *Report
	known   map[int]bool
	seen    map[string]bool
}

func (r *checkRun) dedupe(key string) bool {
	if r.seen == nil {
		r.seen = make(map[string]bool)
	}
	if r.seen[key] {
		return true
	}
	r.seen[key] = true
	return false
}

// effectiveTaint computes the taint of an observable value, optionally
// discounting attacker-known inputs (§VIII-B). It returns the label and
// whether prior knowledge was needed to reach a single tag.
func (r *checkRun) effectiveTaint(e sym.Expr) (taint.Label, bool) {
	full := taint.FromTagsObserved(r.checker.obs, sym.SecretTags(e))
	if full.IsSingle() || full.IsBottom() || len(r.known) == 0 {
		return full, false
	}
	var tags []taint.Tag
	for _, s := range sym.FreeSymbols(e) {
		if s.Secret() && !r.known[s.ID] {
			tags = append(tags, s.Tag)
		}
	}
	eff := taint.FromTagsObserved(r.checker.obs, tags)
	return eff, eff.IsSingle()
}

// explicitChecks applies the out-parameter / return / OCALL taint policy.
func (r *checkRun) explicitChecks(file *minic.File, params []symexec.ParamSpec) {
	for _, p := range r.res.Paths {
		for _, o := range p.Outs {
			r.explicitOne(SinkOutParam, o.Display, minic.Pos{}, o.Value, p.PC, file, params)
		}
		if p.Return != nil {
			r.explicitOne(SinkReturn, "return", p.ReturnPos, p.Return, p.PC, file, params)
		}
		for _, oc := range p.Ocalls {
			where := fmt.Sprintf("%s@%s", oc.Func, oc.Pos)
			for _, a := range oc.Args {
				r.explicitOne(SinkOCall, where, oc.Pos, a, oc.PC, file, params)
			}
		}
	}
}

// symbolForTag adapts the engine result to the Alg. 1 kernel's resolver.
func (r *checkRun) symbolForTag(tag taint.Tag) *sym.Symbol {
	return r.res.SecretSymbolByTag(int(tag))
}

func (r *checkRun) explicitOne(sink SinkKind, where string, pos minic.Pos, value sym.Expr, pc *solver.PathCondition, file *minic.File, params []symexec.ParamSpec) {
	label, viaPrior := r.effectiveTaint(value)
	tag, inversion, leak := SingleTagLeak(value, label, r.symbolForTag)
	if !leak {
		return
	}
	// In-enclave entropy blocks deterministic recovery: under the
	// paper's threat model this is not an explicit violation, but the
	// distribution over repeated calls still reveals the secret — the
	// §VIII-A probabilistic channel, reported on request.
	if sym.HasEntropy(value) {
		if !r.checker.opts.ProbabilisticCheck {
			return
		}
		secretSym := r.res.SecretSymbolByTag(int(tag))
		secretName := "?"
		if secretSym != nil {
			secretName = secretSym.Name
		}
		if r.dedupe(fmt.Sprintf("P|%s|%s", where, secretName)) {
			return
		}
		f := Finding{
			Kind:   ProbabilisticLeak,
			Sink:   sink,
			Where:  where,
			Pos:    pos,
			Secret: secretName,
			Tag:    tag,
			Value:  value,
			Path:   pc,
		}
		f.Message = fmt.Sprintf(
			"probabilistic channel: %s %s depends on secret %s masked only by in-enclave entropy",
			f.Sink, f.Where, secretName)
		r.report.Findings = append(r.report.Findings, f)
		return
	}
	secretSym := r.res.SecretSymbolByTag(int(tag))
	secretName := "?"
	if secretSym != nil {
		secretName = secretSym.Name
	}
	if r.dedupe(fmt.Sprintf("E|%s|%s|%s", where, secretName, sym.Key(value))) {
		return
	}
	f := Finding{
		Kind:           ExplicitLeak,
		Sink:           sink,
		Where:          where,
		Pos:            pos,
		Secret:         secretName,
		Tag:            tag,
		Value:          value,
		Path:           pc,
		PriorKnowledge: viaPrior,
		Inversion:      inversion,
	}
	f.Message = fmt.Sprintf("explicit leak: %s %s reveals secret %s (value %s)",
		f.Sink, f.Where, f.Secret, trim(value.String()))
	if r.checker.opts.ReplayWitness && f.Inversion != nil && f.Inversion.Exact &&
		(sink == SinkOutParam || sink == SinkReturn) {
		f.Witness = r.checker.replay(file, r.res, params, &f)
	}
	r.report.Findings = append(r.report.Findings, f)
}

// implicitChecks applies Alg. 1 across paths, generalized to multi-branch
// programs. For every sink location it groups completed paths by the value
// they reveal there (the role of the hashmap hm), then compares path pairs
// from different groups: when two paths' conditions differ ONLY in
// constraints tainted by a single secret and the revealed values differ,
// varying that one secret observably changes the output — the definition of
// a nonreversibility violation through control flow (§IV). A value revealed
// on one path but absent on the sibling (Alg. 1's end-of-exploration hm
// check) leaks through output presence the same way.
func (r *checkRun) implicitChecks() {
	type observation struct {
		pc    *solver.PathCondition
		value sym.Expr // nil encodes ABSENT
	}
	type sinkInfo struct {
		sink SinkKind
		pos  minic.Pos
		obs  []observation
	}
	sinks := make(map[string]*sinkInfo)
	var order []string
	observe := func(sink SinkKind, where string, pos minic.Pos, value sym.Expr, pc *solver.PathCondition) {
		// Tainted values are the explicit checker's business.
		if value != nil && !sym.TaintOf(value).IsBottom() {
			return
		}
		info, ok := sinks[where]
		if !ok {
			info = &sinkInfo{sink: sink, pos: pos}
			sinks[where] = info
			order = append(order, where)
		}
		info.obs = append(info.obs, observation{pc: pc, value: value})
	}

	// First pass: register every sink any path touches, so absences are
	// recorded regardless of path exploration order (a sink written only
	// on the second-explored sibling must still compare against the
	// first path's silence).
	register := func(sink SinkKind, where string, pos minic.Pos) {
		if _, ok := sinks[where]; !ok {
			sinks[where] = &sinkInfo{sink: sink, pos: pos}
			order = append(order, where)
		}
	}
	for _, p := range r.res.Paths {
		if p.Return != nil {
			register(SinkReturn, "return", p.ReturnPos)
		}
		for _, o := range p.Outs {
			register(SinkOutParam, o.Display, minic.Pos{})
		}
		for _, oc := range p.Ocalls {
			register(SinkOCall, fmt.Sprintf("%s@%s", oc.Func, oc.Pos), oc.Pos)
		}
	}
	// Second pass: record each path's observation (or absence) per sink.
	for _, p := range r.res.Paths {
		seenHere := make(map[string]bool)
		if p.Return != nil {
			observe(SinkReturn, "return", p.ReturnPos, p.Return, p.PC)
			seenHere["return"] = true
		}
		for _, o := range p.Outs {
			observe(SinkOutParam, o.Display, minic.Pos{}, o.Value, p.PC)
			seenHere[o.Display] = true
		}
		for _, oc := range p.Ocalls {
			where := fmt.Sprintf("%s@%s", oc.Func, oc.Pos)
			for _, a := range oc.Args {
				observe(SinkOCall, where, oc.Pos, a, oc.PC)
				seenHere[where] = true
			}
		}
		// Record absences so output-presence leaks are comparable. An
		// unwritten [out] cell is observably zero (the buffer enters
		// the enclave zeroed), so its absence compares as 0; a missing
		// return value or OCALL is a genuine presence channel.
		for _, where := range order {
			if seenHere[where] {
				continue
			}
			info := sinks[where]
			if info.sink == SinkOutParam {
				info.obs = append(info.obs, observation{pc: p.PC, value: sym.IntConst{V: 0}})
			} else {
				info.obs = append(info.obs, observation{pc: p.PC, value: nil})
			}
		}
	}

	const pairBudget = 100_000
	comparisons := 0
	for _, where := range order {
		info := sinks[where]
		for i := 0; i < len(info.obs); i++ {
			for j := i + 1; j < len(info.obs); j++ {
				if comparisons++; comparisons > pairBudget {
					return
				}
				a, b := info.obs[i], info.obs[j]
				if exprEqual(a.value, b.value) {
					continue
				}
				tag, single := r.pcDiffTaint(a.pc, b.pc)
				if !single {
					continue
				}
				values := [2]sym.Expr{a.value, b.value}
				pcA, pcB := a.pc, b.pc
				if a.value == nil {
					values = [2]sym.Expr{b.value, nil}
					pcA, pcB = b.pc, a.pc
				}
				r.emitImplicit(tag, info.sink, where, info.pos, values, pcA, pcB)
			}
		}
	}
}

func exprEqual(a, b sym.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return sym.Equal(a, b)
}

// pcDiffTaint computes the taint of the conjuncts on which two path
// conditions disagree. A single tag means the two executions differ only in
// how one secret steered control flow.
func (r *checkRun) pcDiffTaint(a, b *solver.PathCondition) (taint.Tag, bool) {
	inA := make(map[string]sym.Expr)
	for _, c := range a.Conjuncts() {
		inA[sym.Key(c)] = c
	}
	inB := make(map[string]sym.Expr)
	for _, c := range b.Conjuncts() {
		inB[sym.Key(c)] = c
	}
	var tags []taint.Tag
	seen := make(map[taint.Tag]bool)
	collect := func(c sym.Expr) {
		for _, tg := range sym.SecretTags(c) {
			if !seen[tg] {
				seen[tg] = true
				tags = append(tags, tg)
			}
		}
	}
	diff := false
	for k, c := range inA {
		if _, ok := inB[k]; !ok {
			diff = true
			collect(c)
		}
	}
	for k, c := range inB {
		if _, ok := inA[k]; !ok {
			diff = true
			collect(c)
		}
	}
	if !diff {
		return 0, false
	}
	return taint.FromTagsObserved(r.checker.obs, tags).Tag()
}

func (r *checkRun) emitImplicit(tag taint.Tag, sink SinkKind, where string, pos minic.Pos, values [2]sym.Expr, pc, pcSibling *solver.PathCondition) {
	secretSym := r.res.SecretSymbolByTag(int(tag))
	secretName := "?"
	if secretSym != nil {
		secretName = secretSym.Name
	}
	if r.dedupe(fmt.Sprintf("I|%s|%s", where, secretName)) {
		return
	}
	f := Finding{
		Kind:   ImplicitLeak,
		Sink:   sink,
		Where:  where,
		Pos:    pos,
		Secret: secretName,
		Tag:    tag,
		Values: values,
		Path:   pc,
	}
	if r.checker.opts.ReplayWitness && pcSibling != nil &&
		(sink == SinkReturn || sink == SinkOutParam) {
		f.Witness = r.checker.replayImplicit(r.file, r.res, &f, pc, pcSibling)
	}
	if values[1] != nil {
		f.Message = fmt.Sprintf("implicit leak: %s at %s reveals %s vs %s depending on secret %s",
			f.Sink, f.Where, trim(values[0].String()), trim(values[1].String()), secretName)
	} else {
		f.Message = fmt.Sprintf("implicit leak: output at %s is produced only on paths branching on secret %s",
			f.Where, secretName)
	}
	r.report.Findings = append(r.report.Findings, f)
}

// timingChecks implements the §VIII-A timing-channel extension: when two
// completed paths differ only in constraints on a single secret but execute
// a different number of statements, an attacker timing the enclave learns
// that secret's branch outcome even if no data value leaks.
func (r *checkRun) timingChecks() {
	paths := r.res.Paths
	const pairBudget = 100_000
	comparisons := 0
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if comparisons++; comparisons > pairBudget {
				return
			}
			a, b := paths[i], paths[j]
			if a.Cost == b.Cost {
				continue
			}
			tag, single := r.pcDiffTaint(a.PC, b.PC)
			if !single {
				continue
			}
			secretSym := r.res.SecretSymbolByTag(int(tag))
			secretName := "?"
			if secretSym != nil {
				secretName = secretSym.Name
			}
			if r.dedupe(fmt.Sprintf("T|%s", secretName)) {
				continue
			}
			f := Finding{
				Kind:   TimingLeak,
				Sink:   SinkReturn, // observed at call completion
				Where:  "execution time",
				Secret: secretName,
				Tag:    tag,
				Costs:  [2]int{a.Cost, b.Cost},
				Path:   a.PC,
			}
			f.Message = fmt.Sprintf(
				"timing channel: paths branching on secret %s execute %d vs %d statements",
				secretName, a.Cost, b.Cost)
			r.report.Findings = append(r.report.Findings, f)
		}
	}
}
