package core

import (
	"fmt"
	"sort"

	"privacyscope/internal/minic"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/taint"
)

// This file implements declassify_check (Algorithm 1 of the paper) as a
// front-end-neutral kernel. The PRIML adapter drives it once per declassify
// intrinsic executed by the shared symbolic engine; the MiniC checker uses
// SingleTagLeak for its per-sink explicit policy (its implicit detection
// generalizes Alg. 1's two-sibling hashmap to arbitrary path pairs, see
// checker.implicitChecks).
//
// The kernel is deliberately stateful in exactly the way Alg. 1 is: hm maps
// the single secret tag of a path condition to the value a sibling path
// declassified under it. A second declassify under the same tag either
// matches (the pair reveals nothing; the entry is consumed) or differs (an
// implicit violation). Entries still present when exploration ends flag
// output-presence leaks.

// Alg1Kind classifies a kernel violation.
type Alg1Kind int

// Kernel violation kinds.
const (
	// Alg1Explicit: the declassified value itself carries a single secret
	// tag (line 2 of Alg. 1).
	Alg1Explicit Alg1Kind = iota + 1
	// Alg1Implicit: sibling paths branching on one secret declassify
	// different values (the hm mismatch case).
	Alg1Implicit
	// Alg1Presence: a declassify executed only on paths where π depends
	// on one secret — the end-of-exploration hm check.
	Alg1Presence
	// Alg1Custom: a user-supplied policy reported a violation.
	Alg1Custom
)

// Alg1Violation is one violation detected by the kernel. The front end owns
// rendering: the kernel reports structure (kind, site, tag, values,
// inversion), not prose, so PRIML and MiniC reports keep their own formats.
type Alg1Violation struct {
	Kind Alg1Kind
	// Site is the declassify site ID.
	Site int
	// Pos is the source position of the declassify.
	Pos minic.Pos
	// Tag is the leaked secret's taint tag.
	Tag taint.Tag
	// Value is the declassified expression (explicit and custom kinds).
	Value sym.Expr
	// Values holds the two differing revealed values (implicit kinds;
	// Values[1] is nil for presence leaks).
	Values [2]sym.Expr
	// Pi is the path condition under which the violation manifests.
	Pi *solver.PathCondition
	// Inversion is the affine recovery formula, when one exists.
	Inversion *sym.Inversion
	// CustomMessage is the policy's message (Alg1Custom only).
	CustomMessage string
}

// Alg1 runs declassify_check across the paths of one exploration. Configure
// the exported fields before the first Declassify call.
type Alg1 struct {
	// ImplicitCheck enables the hashmap-based implicit detection.
	ImplicitCheck bool
	// CustomPolicy, when set, runs at every declassify in addition to the
	// built-in policy; a non-empty message reports an Alg1Custom violation
	// (deduplicated per site+message across sibling paths).
	CustomPolicy func(value sym.Expr, label taint.Label, pi *solver.PathCondition) string
	// SymbolForTag resolves a taint tag to its source symbol so explicit
	// violations can carry an inversion formula. May be nil.
	SymbolForTag func(tag taint.Tag) *sym.Symbol
	// OnViolation receives every violation as it is detected, in
	// exploration order. Must be set before use.
	OnViolation func(v Alg1Violation)

	hm         map[taint.Tag]*alg1Entry
	customSeen map[string]bool
}

type alg1Entry struct {
	value    sym.Expr
	site     int
	pos      minic.Pos
	pi       *solver.PathCondition
	reported bool
}

// NewAlg1 returns a kernel with implicit checking enabled and no custom
// policy; adjust the fields before use.
func NewAlg1() *Alg1 {
	return &Alg1{ImplicitCheck: true, hm: make(map[taint.Tag]*alg1Entry)}
}

// Declassify runs lines 1–13 of Alg. 1 for one declassify(value) executed
// at site under path condition pi.
func (a *Alg1) Declassify(site int, pos minic.Pos, value sym.Expr, pi *solver.PathCondition) {
	label := sym.TaintOf(value)
	if a.CustomPolicy != nil {
		if msg := a.CustomPolicy(value, label, pi); msg != "" && !a.dedupeCustom(site, msg) {
			a.OnViolation(Alg1Violation{
				Kind:          Alg1Custom,
				Site:          site,
				Pos:           pos,
				Value:         value,
				Pi:            pi,
				CustomMessage: msg,
			})
		}
	}
	if tag, inv, leak := SingleTagLeak(value, label, a.SymbolForTag); leak {
		a.OnViolation(Alg1Violation{
			Kind:      Alg1Explicit,
			Site:      site,
			Pos:       pos,
			Tag:       tag,
			Value:     value,
			Pi:        pi,
			Inversion: inv,
		})
		return
	}
	if !a.ImplicitCheck {
		return
	}
	piTag, single := pi.Taint().Tag()
	if !single {
		return
	}
	entry, ok := a.hm[piTag]
	switch {
	case !ok:
		a.hm[piTag] = &alg1Entry{value: value, site: site, pos: pos, pi: pi}
	case !sym.Equal(entry.value, value):
		if !entry.reported {
			a.OnViolation(Alg1Violation{
				Kind:   Alg1Implicit,
				Site:   site,
				Pos:    pos,
				Tag:    piTag,
				Values: [2]sym.Expr{entry.value, value},
				Pi:     pi,
			})
			entry.reported = true
		}
	default:
		// Sibling path revealed the same value: the pair carries no
		// information about the secret; consume the entry.
		delete(a.hm, piTag)
	}
}

// Finish runs the end-of-last-path check of Alg. 1: any unmatched,
// unreported hm entry is an output-presence violation, provided more than
// one path completed (a single path has no silent sibling to compare to).
func (a *Alg1) Finish(paths int) {
	tags := make([]taint.Tag, 0, len(a.hm))
	for tag := range a.hm {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	for _, tag := range tags {
		entry := a.hm[tag]
		if entry.reported || paths < 2 {
			continue
		}
		a.OnViolation(Alg1Violation{
			Kind:   Alg1Presence,
			Site:   entry.site,
			Pos:    entry.pos,
			Tag:    tag,
			Values: [2]sym.Expr{entry.value, nil},
			Pi:     entry.pi,
		})
	}
}

// HmSnapshot renders the live hashmap as tag → value strings, the hm column
// of the paper's Tables II/III.
func (a *Alg1) HmSnapshot() map[string]string {
	out := make(map[string]string, len(a.hm))
	for tag, e := range a.hm {
		out[tag.String()] = e.value.String()
	}
	return out
}

func (a *Alg1) dedupeCustom(site int, msg string) bool {
	if a.customSeen == nil {
		a.customSeen = make(map[string]bool)
	}
	key := fmt.Sprintf("%d|%s", site, msg)
	if a.customSeen[key] {
		return true
	}
	a.customSeen[key] = true
	return false
}

// SingleTagLeak decides line 2 of Alg. 1 for any front end: a value whose
// label is exactly one secret tag is an explicit nonreversibility violation.
// When symbolForTag resolves the tag's source symbol, the affine inversion
// (the attacker's recovery formula) is computed alongside.
func SingleTagLeak(value sym.Expr, label taint.Label, symbolForTag func(taint.Tag) *sym.Symbol) (taint.Tag, *sym.Inversion, bool) {
	tag, single := label.Tag()
	if !single {
		return 0, nil, false
	}
	var inv *sym.Inversion
	if symbolForTag != nil {
		if s := symbolForTag(tag); s != nil {
			if i, ok := sym.InvertFor(value, s.ID); ok {
				inv = i
			}
		}
	}
	return tag, inv, true
}
