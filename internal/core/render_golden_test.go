package core

import "testing"

// TestBox1ReportGolden pins the exact Box 1 rendering for Listing 1,
// byte for byte. TestBox1Report checks the report's *content*; this test
// freezes its *presentation* so an accidental format change (reordered
// findings, altered recovery formula, renamed verdict lines) fails loudly
// instead of silently drifting from the paper's box. Duration is the one
// wall-clock field in the rendering, so it is zeroed before comparing.
func TestBox1ReportGolden(t *testing.T) {
	report := check(t, listing1, "enclave_process_data", listing1Params(), DefaultOptions())
	report.Duration = 0

	const golden = `=== PrivacyScope report: enclave_process_data ===
paths explored: 2, states: 8, regions: 9, secrets: 2, time: 0s

WARNING 1: explicit information leakage via [out] parameter
  sink:   output[0] (line 0)
  secret: secrets[0]
  value:  output[0] = secrets[0] + 101
  recovery: secrets[0] = (observed - 101) / 1
  witness: inputs map[secrets[0]:0 secrets[1]:0] vs map[secrets[0]:5 secrets[1]:0] → observed 101 vs 106, recovered 0 vs 5

WARNING 2: implicit information leakage via return value
  sink:   return (line 7)
  secret: secrets[1]
  branches on secrets[1] reveal 0 vs 1
  path condition: secrets[1] == 0
  witness: inputs map[secrets[0]:0 secrets[1]:0] vs map[secrets[0]:0 secrets[1]:1] → observed 0 vs 1
`
	if got := report.Render(); got != golden {
		t.Errorf("Box 1 rendering drifted.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestErrorReportRenderGolden pins the fail-soft placeholder rendering: an
// entry point that panicked or errored keeps its slot with an explicit
// "not analyzed" verdict line.
func TestErrorReportRenderGolden(t *testing.T) {
	report := ErrorReport("enclave_bad", "panic during analysis: boom")

	const golden = `=== PrivacyScope report: enclave_bad ===
ANALYSIS ERROR: panic during analysis: boom
verdict: error — this entry point was not analyzed; sibling entry points were
`
	if got := report.Render(); got != golden {
		t.Errorf("error rendering drifted.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
