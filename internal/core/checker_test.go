package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"privacyscope/internal/minic"
	"privacyscope/internal/symexec"
)

const listing1 = `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`

func listing1Params() []symexec.ParamSpec {
	return []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
}

func check(t *testing.T, src, fn string, params []symexec.ParamSpec, opts Options) *Report {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	report, err := New(opts).CheckFunction(context.Background(), file, fn, params)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestBox1Report reproduces the paper's Box 1: the warning report for
// Listing 1 names both the explicit leak of secrets[0] through output[0]
// and the implicit leak of secrets[1] through the return value.
func TestBox1Report(t *testing.T) {
	report := check(t, listing1, "enclave_process_data", listing1Params(), DefaultOptions())

	if report.Secure() {
		t.Fatal("Listing 1 must be insecure")
	}
	if len(report.Explicit()) != 1 || len(report.Implicit()) != 1 {
		t.Fatalf("findings = %+v", report.Findings)
	}

	exp := report.Explicit()[0]
	if exp.Where != "output[0]" || exp.Secret != "secrets[0]" {
		t.Errorf("explicit = %+v", exp)
	}
	if exp.Inversion == nil || !exp.Inversion.Exact || exp.Inversion.Offset != 101 {
		t.Errorf("inversion = %+v", exp.Inversion)
	}

	imp := report.Implicit()[0]
	if imp.Where != "return" || imp.Secret != "secrets[1]" {
		t.Errorf("implicit = %+v", imp)
	}
	if imp.Values[0].String() != "0" || imp.Values[1].String() != "1" {
		t.Errorf("implicit values = %v, %v", imp.Values[0], imp.Values[1])
	}

	rendered := report.Render()
	for _, want := range []string{
		"PrivacyScope report: enclave_process_data",
		"explicit information leakage",
		"implicit information leakage",
		"secrets[0]",
		"secrets[1]",
		"output[0]",
		"recovery:",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("report missing %q:\n%s", want, rendered)
		}
	}
	if report.Duration <= 0 {
		t.Error("duration not recorded")
	}
	if report.Paths != 2 || report.Secrets != 2 {
		t.Errorf("metrics = %+v", report)
	}
}

// TestWitnessReplayListing1 confirms the explicit finding end-to-end: the
// checker runs the C function concretely twice and the inversion recovers
// the secret — the authors' manual verification, automated.
func TestWitnessReplayListing1(t *testing.T) {
	report := check(t, listing1, "enclave_process_data", listing1Params(), DefaultOptions())
	exp := report.Explicit()[0]
	w := exp.Witness
	if w == nil {
		t.Fatal("no witness")
	}
	if !w.Verified {
		t.Fatalf("witness not verified: %+v", w)
	}
	if !strings.Contains(w.Note, "concrete") {
		t.Errorf("expected concrete replay, got %q", w.Note)
	}
	if w.ObservedA == w.ObservedB {
		t.Error("observations must differ")
	}
	if w.InputsA["secrets[0]"] == w.InputsB["secrets[0]"] {
		t.Error("witness inputs must differ in the leaked secret")
	}
	if w.InputsA["secrets[1]"] != w.InputsB["secrets[1]"] {
		t.Error("witness inputs must agree on the other secret")
	}
}

func TestSecureMaskedSum(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + secrets[1];
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	if !report.Secure() {
		t.Errorf("masked sum must be secure: %+v", report.Findings)
	}
	if !strings.Contains(report.Render(), "no nonreversibility violations") {
		t.Error("secure report text missing")
	}
}

func TestExplicitReturnLeak(t *testing.T) {
	src := `
int f(int *secrets) {
    return secrets[0] * 3;
}
`
	report := check(t, src, "f", []symexec.ParamSpec{{Name: "secrets", Class: symexec.ParamSecret}}, DefaultOptions())
	if len(report.Explicit()) != 1 {
		t.Fatalf("findings = %+v", report.Findings)
	}
	f := report.Explicit()[0]
	if f.Sink != SinkReturn || f.Inversion == nil || f.Inversion.Scale != 3 {
		t.Errorf("finding = %+v", f)
	}
}

func TestExplicitOCallLeak(t *testing.T) {
	src := `
int f(int *secrets) {
    printf("%d", secrets[0] + 1);
    return 0;
}
`
	report := check(t, src, "f", []symexec.ParamSpec{{Name: "secrets", Class: symexec.ParamSecret}}, DefaultOptions())
	if len(report.Explicit()) != 1 {
		t.Fatalf("findings = %+v", report.Findings)
	}
	if report.Explicit()[0].Sink != SinkOCall {
		t.Errorf("sink = %v", report.Explicit()[0].Sink)
	}
}

func TestImplicitOutputPresence(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    if (secrets[0] > 0) {
        output[0] = 7;
    }
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	if len(report.Implicit()) != 1 {
		t.Fatalf("findings = %+v", report.Findings)
	}
	// An unwritten [out] cell is observably zero, so the leak reports
	// the concrete pair 7 vs 0 (with a replayed witness).
	f := report.Implicit()[0]
	values := map[string]bool{}
	if f.Values[0] != nil {
		values[f.Values[0].String()] = true
	}
	if f.Values[1] != nil {
		values[f.Values[1].String()] = true
	}
	if !values["7"] || !values["0"] {
		t.Errorf("values = %+v", f.Values)
	}
	if f.Witness == nil || !f.Witness.Verified {
		t.Errorf("witness = %+v", f.Witness)
	}
}

func TestUnwrittenOutCellIsZeroNotLeak(t *testing.T) {
	// Writing 0 on one path and nothing on the other is observably
	// identical (out buffers enter zeroed) — must NOT be a leak.
	src := `
int f(int *secrets, int *output) {
    if (secrets[0] > 0) {
        output[0] = 0;
    }
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	if !report.Secure() {
		t.Errorf("0-vs-unwritten must be secure: %+v", report.Findings)
	}
}

func TestOutBufferReadsZeroSymbolically(t *testing.T) {
	// Reading an [out] cell before writing sees the zeroed buffer: no
	// phantom symbol flows into the result.
	src := `
int f(int *secrets, int *output) {
    output[0] = output[0] + 5;
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	if !report.Secure() {
		t.Errorf("findings = %+v", report.Findings)
	}
}

func TestImplicitSameValueIsSecure(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    if (secrets[0] > 0) { output[0] = 5; }
    else { output[0] = 5; }
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	if !report.Secure() {
		t.Errorf("same-value branches must be secure: %+v", report.Findings)
	}
}

func TestImplicitMultiSecretBranchSecure(t *testing.T) {
	src := `
int f(int *secrets) {
    if (secrets[0] + secrets[1] > 0) return 1;
    return 0;
}
`
	report := check(t, src, "f", []symexec.ParamSpec{{Name: "secrets", Class: symexec.ParamSecret}}, DefaultOptions())
	if !report.Secure() {
		t.Errorf("⊤-tainted π must be secure: %+v", report.Findings)
	}
}

func TestImplicitCheckAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.ImplicitCheck = false
	report := check(t, listing1, "enclave_process_data", listing1Params(), opts)
	if len(report.Implicit()) != 0 {
		t.Error("implicit findings with check disabled")
	}
	if len(report.Explicit()) != 1 {
		t.Error("explicit finding must survive")
	}
}

func TestDedupAcrossPaths(t *testing.T) {
	// The same explicit leak reachable via two paths reports once.
	src := `
int f(int *secrets, int *output, int n) {
    output[0] = secrets[0];
    if (n > 0) return 1;
    return 0;
}
`
	report := check(t, src, "f", []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
		{Name: "n", Class: symexec.ParamPublic},
	}, DefaultOptions())
	if len(report.Explicit()) != 1 {
		t.Errorf("findings = %+v", report.Findings)
	}
}

func TestPriorKnowledgePolicy(t *testing.T) {
	// §VIII-B: F(A,B) = A + B with B attacker-known leaks A.
	src := `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + secrets[1];
    return 0;
}
`
	opts := DefaultOptions()
	opts.KnownInputs = []string{"secrets[1]"}
	report := check(t, src, "f", listing1Params(), opts)
	if len(report.Explicit()) != 1 {
		t.Fatalf("findings = %+v", report.Findings)
	}
	f := report.Explicit()[0]
	if !f.PriorKnowledge {
		t.Error("finding must be marked as prior-knowledge dependent")
	}
	if f.Secret != "secrets[0]" {
		t.Errorf("secret = %s", f.Secret)
	}
	if !strings.Contains(report.Render(), "prior knowledge") {
		t.Error("report must note the prior-knowledge assumption")
	}

	// Without the assumption, the same program is secure.
	plain := check(t, src, "f", listing1Params(), DefaultOptions())
	if !plain.Secure() {
		t.Error("without prior knowledge the sum is masked")
	}
}

func TestFloatModelLeak(t *testing.T) {
	src := `
float f(float *secrets, float *output) {
    float w = secrets[0] * 0.5;
    output[0] = w;
    return w;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	// Both output[0] and return leak; distinct sinks → two findings.
	if len(report.Explicit()) != 2 {
		t.Fatalf("findings = %+v", report.Findings)
	}
	for _, f := range report.Explicit() {
		if f.Inversion == nil || f.Inversion.Scale != 0.5 {
			t.Errorf("inversion = %+v", f.Inversion)
		}
	}
}

func TestWitnessOnFloatBuffers(t *testing.T) {
	src := `
int f(float *secrets, float *output) {
    output[0] = secrets[0] * 2.0 + 1.0;
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	w := report.Explicit()[0].Witness
	if w == nil || !w.Verified {
		t.Fatalf("witness = %+v", w)
	}
}

func TestCheckErrors(t *testing.T) {
	file := minic.MustParse("int f(void) { return 0; }")
	if _, err := New(DefaultOptions()).CheckFunction(context.Background(), file, "missing", nil); err == nil {
		t.Error("expected error for missing function")
	}
}

func TestSinkAndKindStrings(t *testing.T) {
	if ExplicitLeak.String() != "explicit" || ImplicitLeak.String() != "implicit" {
		t.Error("LeakKind strings wrong")
	}
	if SinkOutParam.String() != "[out] parameter" || SinkReturn.String() != "return value" || SinkOCall.String() != "OCALL argument" {
		t.Error("SinkKind strings wrong")
	}
}

func TestFindingsSorted(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    output[1] = secrets[1];
    output[0] = secrets[0];
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	if len(report.Findings) != 2 {
		t.Fatalf("findings = %+v", report.Findings)
	}
	if report.Findings[0].Where != "output[0]" || report.Findings[1].Where != "output[1]" {
		t.Errorf("order = %s, %s", report.Findings[0].Where, report.Findings[1].Where)
	}
}

func TestImplicitLeakSurvivesOtherBranches(t *testing.T) {
	// The injected implicit leak sits before other secret-dependent
	// branches, so the whole-path π is ⊤; the pairwise-diff variant of
	// Alg. 1 must still isolate the single deciding secret.
	src := `
int f(int *secrets, int *output) {
    if (secrets[0] == 42) { output[0] = 1; }
    else { output[0] = 0; }
    if (secrets[1] > 0) { output[1] = 5; }
    else { output[1] = 5; }
    if (secrets[2] > 10) { output[2] = 3; }
    else { output[2] = 4; }
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	imp := report.Implicit()
	if len(imp) != 2 {
		t.Fatalf("implicit findings = %+v", imp)
	}
	secrets := map[string]bool{}
	for _, f := range imp {
		secrets[f.Secret] = true
	}
	if !secrets["secrets[0]"] || !secrets["secrets[2]"] {
		t.Errorf("leaked secrets = %v, want secrets[0] and secrets[2]", secrets)
	}
	// secrets[1]'s branch reveals the same value both ways: no finding.
	if secrets["secrets[1]"] {
		t.Error("secrets[1] must not be reported")
	}
}

func TestTimingChannelExtension(t *testing.T) {
	// §VIII-A: the branch on the secret does different amounts of work;
	// no data value leaks, but the statement count differs.
	src := `
int f(int *secrets, int *output) {
    int acc = 0;
    if (secrets[0] > 0) {
        for (int i = 0; i < 10; i++) { acc += i; }
    }
    output[0] = 0;
    return 0;
}
`
	// Off by default: only (maybe) nothing.
	base := check(t, src, "f", listing1Params(), DefaultOptions())
	for _, f := range base.Findings {
		if f.Kind == TimingLeak {
			t.Fatal("timing check must be off by default")
		}
	}
	opts := DefaultOptions()
	opts.TimingCheck = true
	report := check(t, src, "f", listing1Params(), opts)
	var timing *Finding
	for i := range report.Findings {
		if report.Findings[i].Kind == TimingLeak {
			timing = &report.Findings[i]
		}
	}
	if timing == nil {
		t.Fatalf("no timing finding: %+v", report.Findings)
	}
	if timing.Secret != "secrets[0]" {
		t.Errorf("secret = %s", timing.Secret)
	}
	if timing.Costs[0] == timing.Costs[1] {
		t.Errorf("costs = %v", timing.Costs)
	}
	if !strings.Contains(report.Render(), "statements") {
		t.Error("render missing timing detail")
	}
	if TimingLeak.String() != "timing-channel" {
		t.Error("kind string wrong")
	}
}

func TestTimingCheckSilentOnBalancedBranches(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int acc = 0;
    if (secrets[0] > 0) { acc = 1; } else { acc = 2; }
    output[0] = 0;
    return 0;
}
`
	opts := DefaultOptions()
	opts.TimingCheck = true
	report := check(t, src, "f", listing1Params(), opts)
	for _, f := range report.Findings {
		if f.Kind == TimingLeak {
			t.Errorf("balanced branches must not be a timing leak: %+v", f)
		}
	}
}

func TestWitnessReplayOnReturnSink(t *testing.T) {
	src := `
int f(int *secrets) {
    return secrets[0] * 3 + 1;
}
`
	report := check(t, src, "f", []symexec.ParamSpec{{Name: "secrets", Class: symexec.ParamSecret}}, DefaultOptions())
	f := report.Explicit()[0]
	if f.Sink != SinkReturn {
		t.Fatalf("sink = %v", f.Sink)
	}
	if f.Witness == nil || !f.Witness.Verified {
		t.Fatalf("witness = %+v", f.Witness)
	}
	if !strings.Contains(f.Witness.Note, "concrete") {
		t.Errorf("note = %q, want concrete replay", f.Witness.Note)
	}
}

// TestAffineLeakProperty drives the entire pipeline over random affine
// programs: output[0] = a*secrets[0] + b*secrets[1] + c violates
// nonreversibility iff exactly one of a, b is non-zero.
func TestAffineLeakProperty(t *testing.T) {
	prop := func(a, b int8, c int8) bool {
		src := fmt.Sprintf(`
int f(int *secrets, int *output) {
    output[0] = %d * secrets[0] + %d * secrets[1] + %d;
    return 0;
}`, a, b, c)
		file, err := minic.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.ReplayWitness = false
		report, err := New(opts).CheckFunction(context.Background(), file, "f", listing1Params())
		if err != nil {
			t.Fatal(err)
		}
		nonzero := 0
		if a != 0 {
			nonzero++
		}
		if b != 0 {
			nonzero++
		}
		wantLeak := nonzero == 1
		return report.Secure() != wantLeak
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRenderTruncatesHugeValues(t *testing.T) {
	// A long sum still renders, truncated, without flooding the report.
	var sb strings.Builder
	sb.WriteString("int f(int *secrets, int *output) {\n    output[0] = secrets[0]")
	for i := 0; i < 40; i++ {
		sb.WriteString(" + 1")
	}
	sb.WriteString(";\n    return 0;\n}")
	report := check(t, sb.String(), "f", listing1Params(), DefaultOptions())
	rendered := report.Render()
	if !strings.Contains(rendered, "truncated") {
		// Only required if the value string exceeded the cap.
		for _, f := range report.Findings {
			if f.Value != nil && len(f.Value.String()) > 200 {
				t.Errorf("long value not truncated:\n%s", rendered)
			}
		}
	}
}

func TestSwitchImplicitLeak(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    switch (secrets[0]) {
    case 7:
        output[0] = 1;
        break;
    default:
        output[0] = 0;
    }
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	if len(report.Implicit()) == 0 {
		t.Fatalf("switch implicit leak missed: %+v", report.Findings)
	}
	if report.Implicit()[0].Secret != "secrets[0]" {
		t.Errorf("secret = %s", report.Implicit()[0].Secret)
	}
}

func TestImplicitWitnessReplay(t *testing.T) {
	// Listing 1's implicit finding now carries a two-run witness: flip
	// only secrets[1] and the concrete return value changes.
	report := check(t, listing1, "enclave_process_data", listing1Params(), DefaultOptions())
	imp := report.Implicit()[0]
	w := imp.Witness
	if w == nil {
		t.Fatal("no implicit witness")
	}
	if !w.Verified {
		t.Fatalf("witness = %+v", w)
	}
	if w.ObservedA == w.ObservedB {
		t.Error("sibling observations must differ")
	}
	if w.InputsA["secrets[1]"] == w.InputsB["secrets[1]"] {
		t.Error("witness runs must differ in the deciding secret")
	}
	if w.InputsA["secrets[0]"] != w.InputsB["secrets[0]"] {
		t.Error("witness runs must agree on the other secret")
	}
}

func TestImplicitWitnessOnOutParam(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    if (secrets[0] == 19) { output[0] = 0; }
    else { output[0] = 1; }
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	imp := report.Implicit()
	if len(imp) != 1 {
		t.Fatalf("findings = %+v", report.Findings)
	}
	w := imp[0].Witness
	if w == nil || !w.Verified {
		t.Fatalf("witness = %+v", w)
	}
	if (w.ObservedA == 0) == (w.ObservedB == 0) {
		t.Errorf("observations = %g, %g", w.ObservedA, w.ObservedB)
	}
}

func TestCheckerCompletesOnLargePathCount(t *testing.T) {
	// 2^10 = 1024 paths through the full checker (including the
	// pairwise implicit and witness machinery) must finish promptly.
	var sb strings.Builder
	sb.WriteString("int f(int *secrets, int *output) {\n    int acc = 0;\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&sb, "    if (secrets[%d] > %d) { acc = acc + %d; } else { acc = acc - %d; }\n", i, i, i+1, i+1)
	}
	sb.WriteString("    output[0] = acc;\n    return 0;\n}\n")
	file, err := minic.Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Engine.MaxPaths = 2048
	start := time.Now()
	report, err := New(opts).CheckFunction(context.Background(), file, "f", listing1Params())
	if err != nil {
		t.Fatal(err)
	}
	if report.Paths != 1024 {
		t.Errorf("paths = %d, want 1024", report.Paths)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("checker took %v on 1024 paths", elapsed)
	}
	// acc mixes all ten secrets → ⊤ → no explicit finding on output[0].
	for _, f := range report.Findings {
		if f.Kind == ExplicitLeak {
			t.Errorf("unexpected explicit finding: %+v", f)
		}
	}
}

func TestImplicitPresenceLeakInElseBranch(t *testing.T) {
	// Regression: the write lives in the ELSE branch, so the non-writing
	// path completes first; the absence must still be recorded.
	src := `
int f(int *secrets, int *output) {
    if (secrets[0] > 0) {
    } else {
        output[0] = 7;
    }
    return 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	if len(report.Implicit()) != 1 {
		t.Fatalf("findings = %+v", report.Findings)
	}
	f := report.Implicit()[0]
	if f.Secret != "secrets[0]" {
		t.Errorf("finding = %+v", f)
	}
}

func TestProbabilisticChannelExtension(t *testing.T) {
	// secret + in-enclave randomness: not deterministically recoverable
	// (secure under the paper's threat model), but the distribution
	// reveals the secret.
	src := `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + rand() % 4;
    return 0;
}
`
	// Default: secure (entropy masks deterministic recovery).
	base := check(t, src, "f", listing1Params(), DefaultOptions())
	if !base.Secure() {
		t.Fatalf("entropy-masked value must be secure by default: %+v", base.Findings)
	}
	// With the probabilistic check: one probabilistic finding.
	opts := DefaultOptions()
	opts.ProbabilisticCheck = true
	report := check(t, src, "f", listing1Params(), opts)
	if len(report.Findings) != 1 {
		t.Fatalf("findings = %+v", report.Findings)
	}
	f := report.Findings[0]
	if f.Kind != ProbabilisticLeak || f.Secret != "secrets[0]" {
		t.Errorf("finding = %+v", f)
	}
	if ProbabilisticLeak.String() != "probabilistic-channel" {
		t.Error("kind string wrong")
	}
	if !strings.Contains(report.Render(), "distribution") {
		t.Errorf("render:\n%s", report.Render())
	}
}

func TestEntropyDoesNotMaskWhenUnused(t *testing.T) {
	// rand() is called but its result never reaches the sink: the plain
	// explicit finding stands.
	src := `
int f(int *secrets, int *output) {
    int noise = rand();
    output[0] = secrets[0] + 1;
    return noise * 0;
}
`
	report := check(t, src, "f", listing1Params(), DefaultOptions())
	if len(report.Explicit()) != 1 {
		t.Fatalf("findings = %+v", report.Findings)
	}
}

func TestEntropyPlusTwoSecretsStaysMasked(t *testing.T) {
	// ⊤-tainted values stay secure regardless of entropy.
	src := `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + secrets[1] + rand();
    return 0;
}
`
	opts := DefaultOptions()
	opts.ProbabilisticCheck = true
	report := check(t, src, "f", listing1Params(), opts)
	if !report.Secure() {
		t.Errorf("⊤ value must stay secure: %+v", report.Findings)
	}
}
