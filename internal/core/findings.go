// Package core implements the PrivacyScope nonreversibility checker — the
// paper's primary contribution. It drives the symbolic execution engine
// over an enclave entry point and applies the declassify_check policy of
// Alg. 1 to everything the untrusted host can observe: [out]-parameter
// contents, return values, and OCALL arguments.
//
//   - An observable value tainted by exactly one secret source is an
//     explicit nonreversibility violation: the attacker can reverse the
//     computation and recover that secret (Example 1 / Table II).
//   - When the path condition π is tainted by exactly one secret and two
//     sibling paths reveal different values at the same sink, the branch
//     outcome — and hence the secret — is observable: an implicit violation
//     (Example 2 / Table III), detected through the hashmap hm.
//
// Each explicit finding carries, when the leaked value is affine in the
// secret, a concrete inversion formula and a two-run witness that the
// checker can replay on the concrete interpreter.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"privacyscope/internal/minic"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/symexec"
	"privacyscope/internal/taint"
)

// LeakKind distinguishes explicit and implicit violations.
type LeakKind int

// Leak kinds.
const (
	ExplicitLeak LeakKind = iota + 1
	ImplicitLeak
	// TimingLeak is the §VIII-A extension: the abstract execution time
	// (statement count) of the path depends on a single secret. Reported
	// only when Options.TimingCheck is enabled.
	TimingLeak
	// ProbabilisticLeak is the §VIII-A probabilistic channel: an
	// observable value depends on a single secret masked only by
	// in-enclave entropy, so its *distribution* reveals the secret even
	// though no single run does. Reported only when
	// Options.ProbabilisticCheck is enabled; under the paper's
	// deterministic threat model such values are otherwise secure.
	ProbabilisticLeak
	// OcallPtrLeak is the ocall-pointer scenario pack (STELLA's
	// pointer-leak pattern): secret-tainted data written through an OCALL
	// pointer argument into untrusted memory, which the per-scalar
	// explicit policy never sees.
	OcallPtrLeak
	// ErrCodeLeak is the errcode-channel scenario pack: a secret-dependent
	// mix reaching an ecall return code or OCALL status sink — the
	// sgx_status_t covert channel. Complements the explicit policy, which
	// only fires on single-secret (invertible) values.
	ErrCodeLeak
	// OrderlinessLeak is the orderliness scenario pack (Guardian's
	// lifecycle property): secret data escapes through an OCALL before the
	// enclave's init/declassify gate ran on that path.
	OrderlinessLeak
	// AccessPatternLeak is the access-pattern scenario pack: a
	// secret-dependent branch or a secret-indexed memory access — the
	// controlled-channel signal visible in page-granular access traces.
	AccessPatternLeak
)

// String names the kind.
func (k LeakKind) String() string {
	switch k {
	case ExplicitLeak:
		return "explicit"
	case ImplicitLeak:
		return "implicit"
	case TimingLeak:
		return "timing-channel"
	case ProbabilisticLeak:
		return "probabilistic-channel"
	case OcallPtrLeak:
		return "ocall-pointer"
	case ErrCodeLeak:
		return "errcode-channel"
	case OrderlinessLeak:
		return "orderliness"
	case AccessPatternLeak:
		return "access-pattern"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// SinkKind classifies where the observation happens.
type SinkKind int

// Sink kinds.
const (
	SinkOutParam SinkKind = iota + 1
	SinkReturn
	SinkOCall
	// SinkBranch is a control-flow observation point: the branch outcome
	// itself is visible through the access trace (access-pattern pack).
	SinkBranch
	// SinkMemory is a data-dependent memory access whose address is
	// visible at page granularity (access-pattern pack).
	SinkMemory
)

// String names the sink kind.
func (s SinkKind) String() string {
	switch s {
	case SinkOutParam:
		return "[out] parameter"
	case SinkReturn:
		return "return value"
	case SinkOCall:
		return "OCALL argument"
	case SinkBranch:
		return "branch"
	case SinkMemory:
		return "memory access"
	}
	return fmt.Sprintf("sink(%d)", int(s))
}

// Finding is one detected nonreversibility violation.
type Finding struct {
	Kind LeakKind
	Sink SinkKind
	// Rule is the detector rule ID ("PS-EXPL", "PS-OCPTR", …) when the
	// finding came through the detector registry (internal/detect); empty
	// for findings produced by the pre-refactor Checker, whose rendering
	// this field must not perturb.
	Rule string
	// Severity is the emitting detector's severity class ("high",
	// "medium"); empty for pre-refactor Checker findings.
	Severity string
	// Where names the sink in source notation: "output[0]", "return",
	// "printf@3:5".
	Where string
	Pos   minic.Pos
	// Secret is the leaked secret's display name (e.g. "secrets[0]").
	Secret string
	// Tag is the secret's taint tag.
	Tag taint.Tag
	// Value is the revealed symbolic value (explicit leaks).
	Value sym.Expr
	// Values holds the differing revealed values of two sibling paths
	// (implicit leaks); Values[1] is nil for presence-only leaks.
	Values [2]sym.Expr
	// Costs holds the differing abstract path costs (timing leaks).
	Costs [2]int
	// Path is a path condition under which the leak manifests.
	Path *solver.PathCondition
	// Inversion is the affine recovery formula, when one exists.
	Inversion *sym.Inversion
	// PriorKnowledge is true when the leak only exists given the
	// attacker's assumed knowledge of other inputs (§VIII-B).
	PriorKnowledge bool
	// Witness is the replayed two-run confirmation, when constructed.
	Witness *Witness
	// Message is the human-readable description.
	Message string
}

// Witness is a concrete two-run demonstration of an explicit leak: the two
// input assignments differ only in the leaked secret, the observed sink
// values differ, and applying the inversion to each observation recovers
// the corresponding secret value.
type Witness struct {
	// InputsA and InputsB assign concrete values by secret display name.
	InputsA, InputsB map[string]int32
	// ObservedA and ObservedB are the sink values of the two runs.
	ObservedA, ObservedB float64
	// RecoveredA and RecoveredB are the inversion outputs.
	RecoveredA, RecoveredB float64
	// Verified is true when the replay confirmed the leak end-to-end.
	Verified bool
	// Note explains a skipped or failed replay.
	Note string
}

// Verdict is the four-valued outcome of checking one entry point. The
// crucial distinction is Inconclusive vs Secure: a truncated exploration
// that found nothing must never be reported as "no leaks found".
type Verdict int

// Verdicts, ordered by severity for aggregation.
const (
	// VerdictSecure: the exploration was exhaustive and found no
	// violation.
	VerdictSecure Verdict = iota + 1
	// VerdictInconclusive: no violation found, but coverage was partial
	// (budget, deadline or cancellation cut the exploration).
	VerdictInconclusive
	// VerdictError: the analysis itself failed (panic, unknown entry
	// point, semantic error); Report.Err carries the description.
	VerdictError
	// VerdictFindings: at least one violation was detected. Findings on
	// the explored paths are real regardless of truncation.
	VerdictFindings
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictSecure:
		return "secure"
	case VerdictInconclusive:
		return "inconclusive"
	case VerdictError:
		return "error"
	case VerdictFindings:
		return "findings"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Report is the outcome of checking one enclave entry point.
type Report struct {
	Function string
	Findings []Finding
	// Paths, States and Regions are exploration metrics.
	Paths   int
	States  int
	Regions int
	// Secrets is the number of distinct secret sources observed.
	Secrets int
	// Coverage records how much of the path space was explored; when
	// Coverage.Truncated the verdict downgrades to Inconclusive unless
	// findings were detected anyway.
	Coverage symexec.Coverage
	// Err is the analysis failure description for error entries produced
	// by the fail-soft facade (a panicking or failing entry point keeps
	// its slot in the enclave report instead of aborting the module).
	Err string
	// Duration is the wall-clock analysis time (Table V's metric).
	Duration time.Duration
	Warnings []string
}

// ErrorReport builds the per-function placeholder for an entry point whose
// analysis failed outright (panic or hard error). It keeps the function's
// slot in the enclave report so sibling entry points still get analyzed.
func ErrorReport(fn, errMsg string) *Report {
	return &Report{Function: fn, Err: errMsg}
}

// Verdict classifies the report: findings beat everything (a leak found on
// a truncated run is still a leak), then error, then inconclusive, then
// secure.
func (r *Report) Verdict() Verdict {
	switch {
	case len(r.Findings) > 0:
		return VerdictFindings
	case r.Err != "":
		return VerdictError
	case r.Coverage.Truncated:
		return VerdictInconclusive
	default:
		return VerdictSecure
	}
}

// Secure reports whether the entry point was *proved* free of violations:
// no findings, no analysis failure, and exhaustive coverage. A truncated
// or failed run is never secure.
func (r *Report) Secure() bool { return r.Verdict() == VerdictSecure }

// Explicit returns the explicit findings.
func (r *Report) Explicit() []Finding { return r.filter(ExplicitLeak) }

// Implicit returns the implicit findings.
func (r *Report) Implicit() []Finding { return r.filter(ImplicitLeak) }

func (r *Report) filter(k LeakKind) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// Render pretty-prints the report in the style of the paper's Box 1.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== PrivacyScope report: %s ===\n", r.Function)
	if r.Err != "" {
		fmt.Fprintf(&sb, "ANALYSIS ERROR: %s\n", r.Err)
		fmt.Fprintf(&sb, "verdict: %s — this entry point was not analyzed; sibling entry points were\n", r.Verdict())
		return sb.String()
	}
	fmt.Fprintf(&sb, "paths explored: %d, states: %d, regions: %d, secrets: %d, time: %s\n",
		r.Paths, r.States, r.Regions, r.Secrets, r.Duration.Round(time.Microsecond))
	if r.Coverage.Truncated {
		fmt.Fprintf(&sb, "coverage: PARTIAL — exploration truncated (%s) after %d completed paths, %d steps\n",
			r.Coverage.Reason, r.Coverage.CompletedPaths, r.Coverage.StepsUsed)
	}
	switch r.Verdict() {
	case VerdictSecure:
		sb.WriteString("no nonreversibility violations detected\n")
	case VerdictInconclusive:
		sb.WriteString("verdict: INCONCLUSIVE — no violations on the explored paths, but coverage\n")
		sb.WriteString("is partial; unexplored paths may still leak\n")
	}
	for i, f := range r.Findings {
		fmt.Fprintf(&sb, "\nWARNING %d: %s information leakage via %s\n", i+1, f.Kind, f.Sink)
		fmt.Fprintf(&sb, "  sink:   %s (line %d)\n", f.Where, f.Pos.Line)
		fmt.Fprintf(&sb, "  secret: %s\n", f.Secret)
		switch f.Kind {
		case ExplicitLeak:
			fmt.Fprintf(&sb, "  value:  %s = %s\n", f.Where, trim(f.Value.String()))
			if f.Inversion != nil && f.Inversion.Exact {
				fmt.Fprintf(&sb, "  recovery: %s\n", f.Inversion.Formula())
			}
		case ImplicitLeak:
			if f.Values[1] != nil {
				fmt.Fprintf(&sb, "  branches on %s reveal %s vs %s\n",
					f.Secret, trim(f.Values[0].String()), trim(f.Values[1].String()))
			} else {
				fmt.Fprintf(&sb, "  output at %s happens only on paths where π depends on %s\n",
					f.Where, f.Secret)
			}
			if f.Path != nil {
				fmt.Fprintf(&sb, "  path condition: %s\n", f.Path)
			}
		case TimingLeak:
			fmt.Fprintf(&sb, "  paths branching on %s execute %d vs %d statements\n",
				f.Secret, f.Costs[0], f.Costs[1])
			if f.Path != nil {
				fmt.Fprintf(&sb, "  path condition: %s\n", f.Path)
			}
		case ProbabilisticLeak:
			fmt.Fprintf(&sb, "  value:  %s = %s\n", f.Where, trim(f.Value.String()))
			sb.WriteString("  the masking randomness is generated in-enclave: the output\n")
			sb.WriteString("  distribution over repeated calls reveals the secret\n")
		case OcallPtrLeak:
			fmt.Fprintf(&sb, "  value:  %s = %s\n", f.Where, trim(f.Value.String()))
			sb.WriteString("  the value escapes through an OCALL pointer argument into\n")
			sb.WriteString("  untrusted memory — outside the scalar-argument policy's view\n")
		case ErrCodeLeak:
			if f.Values[1] != nil {
				fmt.Fprintf(&sb, "  status codes %s vs %s depend on the secret mix\n",
					trim(f.Values[0].String()), trim(f.Values[1].String()))
			} else if f.Value != nil {
				fmt.Fprintf(&sb, "  value:  %s = %s\n", f.Where, trim(f.Value.String()))
			}
			sb.WriteString("  the status/return code is a covert channel: repeated calls\n")
			sb.WriteString("  narrow the secret mix one comparison at a time\n")
		case OrderlinessLeak:
			if f.Value != nil {
				fmt.Fprintf(&sb, "  value:  %s = %s\n", f.Where, trim(f.Value.String()))
			}
			sb.WriteString("  entry order bypasses the lifecycle gate: the OCALL runs before\n")
			sb.WriteString("  the init/declassify call on this path\n")
		case AccessPatternLeak:
			if f.Value != nil {
				if f.Sink == SinkBranch {
					fmt.Fprintf(&sb, "  condition: %s\n", trim(f.Value.String()))
				} else {
					fmt.Fprintf(&sb, "  index:  %s\n", trim(f.Value.String()))
				}
			}
			sb.WriteString("  the access pattern is visible at page granularity to the host\n")
			sb.WriteString("  (controlled-channel attack surface)\n")
		}
		// The rule line renders only for the scenario-pack kinds: the three
		// legacy kinds predate rule IDs and their rendering is pinned
		// byte-identical to the pre-refactor checker by the differential
		// gate (make detect-smoke).
		switch f.Kind {
		case OcallPtrLeak, ErrCodeLeak, OrderlinessLeak, AccessPatternLeak:
			if f.Rule != "" {
				fmt.Fprintf(&sb, "  rule:   %s (severity %s)\n", f.Rule, f.Severity)
			}
		}
		if f.PriorKnowledge {
			sb.WriteString("  note: leak assumes attacker prior knowledge of other inputs (§VIII-B)\n")
		}
		if f.Witness != nil && f.Witness.Verified {
			if f.Kind == ExplicitLeak {
				fmt.Fprintf(&sb, "  witness: inputs %v vs %v → observed %g vs %g, recovered %g vs %g\n",
					f.Witness.InputsA, f.Witness.InputsB,
					f.Witness.ObservedA, f.Witness.ObservedB,
					f.Witness.RecoveredA, f.Witness.RecoveredB)
			} else {
				fmt.Fprintf(&sb, "  witness: inputs %v vs %v → observed %g vs %g\n",
					f.Witness.InputsA, f.Witness.InputsB,
					f.Witness.ObservedA, f.Witness.ObservedB)
			}
		}
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&sb, "\nnote: %s\n", w)
	}
	return sb.String()
}

// maxRenderedValue bounds how much of a symbolic value the report prints;
// aggregate expressions (k-means centroids, regression slopes) can be
// arbitrarily large.
const maxRenderedValue = 160

// Trim exposes the report value-trimming rule so the detector registry
// (internal/detect) renders values exactly like the built-in messages.
func Trim(s string) string { return trim(s) }

func trim(s string) string {
	if len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
		depth := 0
		balanced := true
		for i := 0; i < len(s)-1; i++ {
			switch s[i] {
			case '(':
				depth++
			case ')':
				depth--
			}
			if depth == 0 {
				balanced = false
				break
			}
		}
		if balanced {
			s = s[1 : len(s)-1]
		}
	}
	if len(s) > maxRenderedValue {
		return s[:maxRenderedValue] + " …(truncated)"
	}
	return s
}

func sortFindings(fs []Finding) { SortFindings(fs) }

// SortFindings orders findings deterministically: by sink location, then
// leak kind, then detector rule ID, then secret. The rule key keeps
// multi-detector reports stable across -path-workers and -jobs; it is
// vacuous for pre-refactor Checker findings (Rule always empty) and for
// same-kind registry findings (one rule per kind), so the legacy order is
// unchanged — the property the differential gate pins.
func SortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Where != fs[j].Where {
			return fs[i].Where < fs[j].Where
		}
		if fs[i].Kind != fs[j].Kind {
			return fs[i].Kind < fs[j].Kind
		}
		if fs[i].Rule != fs[j].Rule {
			return fs[i].Rule < fs[j].Rule
		}
		return fs[i].Secret < fs[j].Secret
	})
}
