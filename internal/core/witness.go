package core

import (
	"strconv"
	"strings"

	"privacyscope/internal/interp"
	"privacyscope/internal/minic"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/symexec"
)

// ReplayExplicit builds and verifies a two-run witness for an explicit-style
// finding with an exact affine inversion. It is the exported entry the
// detector registry (internal/detect) uses; the Checker's own explicit pass
// calls the unexported replay directly. A Checker constructed only for
// replay (core.New with just an Observer) is a valid receiver: replay uses
// the solver and observer, never the engine options.
func (c *Checker) ReplayExplicit(file *minic.File, res *symexec.Result, params []symexec.ParamSpec, f *Finding) *Witness {
	return c.replay(file, res, params, f)
}

// ReplayImplicit builds a two-run witness for an implicit-style finding:
// one run per sibling path condition, inputs differing only in the deciding
// secret. Exported for the detector registry.
func (c *Checker) ReplayImplicit(file *minic.File, res *symexec.Result, f *Finding, pcA, pcB *solver.PathCondition) *Witness {
	return c.replayImplicit(file, res, f, pcA, pcB)
}

// replay builds and verifies a two-run witness for an explicit out-param
// finding with an exact affine inversion. It prefers a fully concrete
// replay on the MiniC interpreter (run the enclave function twice with
// inputs differing only in the leaked secret, observe the [out] buffer,
// apply the inversion); when the sink or inputs cannot be concretized it
// falls back to evaluating the symbolic sink value.
func (c *Checker) replay(file *minic.File, res *symexec.Result, params []symexec.ParamSpec, f *Finding) *Witness {
	span := c.obs.StartSpan("check/witness")
	defer span.End()
	c.obs.Add("core.witness.replays", 1)
	w := &Witness{}
	secretSym := res.SecretSymbolByTag(int(f.Tag))
	if secretSym == nil || f.Inversion == nil || !f.Inversion.Exact {
		w.Note = "no exact inversion; replay skipped"
		return w
	}
	// A model of the path condition fixes every constrained input.
	model, ok := c.sv.Model(f.Path, res.Builder.Symbols())
	if !ok {
		w.Note = "path condition has no model; replay skipped"
		return w
	}
	bindA := make(sym.Binding, len(model))
	for k, v := range model {
		bindA[k] = v
	}
	if _, bound := bindA[secretSym.ID]; !bound {
		bindA[secretSym.ID] = sym.IntVal(1)
	}
	// Small magnitudes keep char-typed buffers clear of 8-bit wraparound,
	// which the symbolic value domain does not model.
	bindB := make(sym.Binding, len(bindA))
	for k, v := range bindA {
		bindB[k] = v
	}
	bindB[secretSym.ID] = sym.IntVal(bindA[secretSym.ID].AsInt() + 5)
	// The flipped secret must not break the path condition.
	for _, conj := range f.Path.Conjuncts() {
		v, err := sym.Eval(conj, bindB)
		if err != nil || v.IsZero() {
			w.Note = "path condition pins the leaked secret; replay skipped"
			return w
		}
	}
	w.InputsA = bindingByName(res, bindA)
	w.InputsB = bindingByName(res, bindB)

	if c.concreteReplay(file, res, params, f, secretSym, bindA, bindB, w) {
		return w
	}
	// Symbolic fallback: evaluate the recorded sink expression.
	obsA, errA := sym.Eval(f.Value, bindA)
	obsB, errB := sym.Eval(f.Value, bindB)
	if errA != nil || errB != nil {
		w.Note = "sink value not evaluable; replay skipped"
		return w
	}
	c.finishWitness(f, secretSym, bindA, bindB, obsA.AsFloat(), obsB.AsFloat(), w, "symbolic")
	return w
}

func (c *Checker) finishWitness(f *Finding, secretSym *sym.Symbol, bindA, bindB sym.Binding, obsA, obsB float64, w *Witness, mode string) {
	w.ObservedA, w.ObservedB = obsA, obsB
	w.RecoveredA = (obsA - f.Inversion.Offset) / f.Inversion.Scale
	w.RecoveredB = (obsB - f.Inversion.Offset) / f.Inversion.Scale
	wantA := bindA[secretSym.ID].AsFloat()
	wantB := bindB[secretSym.ID].AsFloat()
	w.Verified = obsA != obsB &&
		approxEq(w.RecoveredA, wantA) && approxEq(w.RecoveredB, wantB)
	if !w.Verified {
		w.Note = mode + " replay did not confirm the inversion"
	} else {
		w.Note = mode + " replay"
		c.obs.Add("core.witness.verified", 1)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

func bindingByName(res *symexec.Result, b sym.Binding) map[string]int32 {
	out := make(map[string]int32)
	for name, s := range res.SecretSymbols {
		if v, ok := b[s.ID]; ok {
			out[name] = v.AsInt()
		}
	}
	return out
}

// concreteReplay drives the enclave function on the concrete interpreter.
// Returns false (leaving w untouched beyond inputs) when concretization is
// impossible; the symbolic fallback then applies.
func (c *Checker) concreteReplay(file *minic.File, res *symexec.Result, params []symexec.ParamSpec, f *Finding, secretSym *sym.Symbol, bindA, bindB sym.Binding, w *Witness) bool {
	fn, ok := file.Function(res.Function)
	if !ok || fn.Body == nil {
		return false
	}
	isReturnSink := f.Sink == SinkReturn
	var outParam string
	var outIdx int
	if !isReturnSink {
		outParam, outIdx, ok = splitDisplay(f.Where)
		if !ok {
			return false
		}
	}
	sizes := bufferSizes(res)
	runOnce := func(bind sym.Binding) (float64, bool) {
		machine, err := interp.NewMachine(file)
		if err != nil {
			return 0, false
		}
		var outBuf *interp.Object
		args := make([]interp.Value, 0, len(fn.Params))
		for _, p := range fn.Params {
			ptr, isPtr := p.Type.(minic.Pointer)
			if !isPtr {
				// Scalar: bind from the model by name.
				v, ok := symValueByName(res, bind, p.Name)
				if !ok {
					v = sym.IntVal(0)
				}
				if minic.IsFloatType(p.Type) {
					args = append(args, interp.FloatValue(v.AsFloat()))
				} else {
					args = append(args, interp.IntValue(int64(v.AsInt())))
				}
				continue
			}
			kind := cellKindOf(ptr.Elem)
			if kind == 0 {
				return 0, false // struct pointers: not concretized
			}
			n := sizes[p.Name]
			if outParam == p.Name && outIdx+1 > n {
				n = outIdx + 1
			}
			if n == 0 {
				n = 1
			}
			buf := interp.NewBuffer(p.Name, kind, n)
			// Fill secret elements from the binding.
			for name, s := range res.SecretSymbols {
				pn, idx, ok := splitDisplay(name)
				if !ok || pn != p.Name {
					continue
				}
				v, bound := bind[s.ID]
				if !bound {
					continue
				}
				if kind == interp.CellFloat {
					_ = buf.Store(idx, interp.FloatValue(v.AsFloat()))
				} else {
					_ = buf.Store(idx, interp.IntValue(int64(v.AsInt())))
				}
			}
			if p.Name == outParam {
				outBuf = buf
			}
			args = append(args, interp.PtrValue(interp.Pointer{Obj: buf}))
		}
		if outBuf == nil && !isReturnSink {
			return 0, false
		}
		ret, err := machine.Call(res.Function, args)
		if err != nil {
			return 0, false
		}
		if isReturnSink {
			// The concrete run may follow a different path than
			// f.Path when the leaking return is path-dependent; the
			// model pins the path, so the observation is valid.
			return ret.Float(), true
		}
		cell, err := outBuf.Load(outIdx)
		if err != nil {
			return 0, false
		}
		return cell.Float(), true
	}

	obsA, okA := runOnce(bindA)
	obsB, okB := runOnce(bindB)
	if !okA || !okB {
		return false
	}
	c.finishWitness(f, secretSym, bindA, bindB, obsA, obsB, w, "concrete")
	return true
}

// splitDisplay parses "param[3]" into ("param", 3).
func splitDisplay(display string) (string, int, bool) {
	open := strings.IndexByte(display, '[')
	if open <= 0 || !strings.HasSuffix(display, "]") {
		return "", 0, false
	}
	idx, err := strconv.Atoi(display[open+1 : len(display)-1])
	if err != nil || idx < 0 {
		return "", 0, false
	}
	return display[:open], idx, true
}

// bufferSizes infers, per pointer parameter, how many elements the analysis
// touched (max display index + 1).
func bufferSizes(res *symexec.Result) map[string]int {
	sizes := make(map[string]int)
	grow := func(display string) {
		if p, idx, ok := splitDisplay(display); ok {
			if idx+1 > sizes[p] {
				sizes[p] = idx + 1
			}
		}
	}
	for name := range res.SecretSymbols {
		grow(name)
	}
	for _, path := range res.Paths {
		for _, o := range path.Outs {
			grow(o.Display)
		}
	}
	return sizes
}

func symValueByName(res *symexec.Result, bind sym.Binding, name string) (sym.Value, bool) {
	for _, s := range res.Builder.Symbols() {
		if s.Name == name {
			v, ok := bind[s.ID]
			return v, ok
		}
	}
	return sym.Value{}, false
}

func cellKindOf(t minic.Type) interp.CellKind {
	b, ok := t.(minic.Basic)
	if !ok {
		return 0
	}
	switch b.Kind {
	case minic.Char:
		return interp.CellChar
	case minic.Int:
		return interp.CellInt
	case minic.Float, minic.Double:
		return interp.CellFloat
	}
	return 0
}

// replayImplicit builds a two-run witness for an implicit finding: one run
// per sibling path, with every input shared except the deciding secret.
// The observed sink values (or output presence) must differ.
func (c *Checker) replayImplicit(file *minic.File, res *symexec.Result, f *Finding, pcA, pcB *solver.PathCondition) *Witness {
	span := c.obs.StartSpan("check/witness")
	defer span.End()
	c.obs.Add("core.witness.replays", 1)
	w := &Witness{}
	secretSym := res.SecretSymbolByTag(int(f.Tag))
	if secretSym == nil {
		w.Note = "no secret symbol; replay skipped"
		return w
	}
	modelA, okA := c.sv.Model(pcA, res.Builder.Symbols())
	if !okA {
		w.Note = "no model for the first path; replay skipped"
		return w
	}
	modelB, okB := c.sv.Model(pcB, res.Builder.Symbols())
	if !okB {
		w.Note = "no model for the sibling path; replay skipped"
		return w
	}
	// Align: keep B's value only for the deciding secret; everything else
	// comes from A. The paths differ solely in constraints on the deciding
	// secret, so the merged binding still satisfies pcB.
	merged := make(sym.Binding, len(modelA))
	for k, v := range modelA {
		merged[k] = v
	}
	merged[secretSym.ID] = modelB[secretSym.ID]
	for _, conj := range pcB.Conjuncts() {
		v, err := sym.Eval(conj, merged)
		if err != nil || v.IsZero() {
			w.Note = "paths disagree beyond the deciding secret; replay skipped"
			return w
		}
	}
	w.InputsA = bindingByName(res, modelA)
	w.InputsB = bindingByName(res, merged)

	obsA, okA := c.observeSink(file, res, f, modelA)
	obsB, okB := c.observeSink(file, res, f, merged)
	if !okA || !okB {
		w.Note = "sink not concretely observable; replay skipped"
		return w
	}
	w.ObservedA, w.ObservedB = obsA, obsB
	w.Verified = obsA != obsB
	if w.Verified {
		w.Note = "concrete replay: sibling observations differ"
		c.obs.Add("core.witness.verified", 1)
	} else {
		w.Note = "concrete replay did not distinguish the paths"
	}
	return w
}

// observeSink runs the function concretely under the binding and reads the
// finding's sink: the return value, or an [out] element (absence reads the
// zeroed buffer).
func (c *Checker) observeSink(file *minic.File, res *symexec.Result, f *Finding, bind sym.Binding) (float64, bool) {
	fn, ok := file.Function(res.Function)
	if !ok || fn.Body == nil {
		return 0, false
	}
	var outParam string
	var outIdx int
	if f.Sink == SinkOutParam {
		outParam, outIdx, ok = splitDisplay(f.Where)
		if !ok {
			return 0, false
		}
	} else if f.Sink != SinkReturn {
		return 0, false
	}
	machine, err := interp.NewMachine(file)
	if err != nil {
		return 0, false
	}
	sizes := bufferSizes(res)
	var outBuf *interp.Object
	args := make([]interp.Value, 0, len(fn.Params))
	for _, p := range fn.Params {
		ptr, isPtr := p.Type.(minic.Pointer)
		if !isPtr {
			v, ok := symValueByName(res, bind, p.Name)
			if !ok {
				v = sym.IntVal(0)
			}
			if minic.IsFloatType(p.Type) {
				args = append(args, interp.FloatValue(v.AsFloat()))
			} else {
				args = append(args, interp.IntValue(int64(v.AsInt())))
			}
			continue
		}
		kind := cellKindOf(ptr.Elem)
		if kind == 0 {
			return 0, false
		}
		n := sizes[p.Name]
		if p.Name == outParam && outIdx+1 > n {
			n = outIdx + 1
		}
		if n == 0 {
			n = 1
		}
		buf := interp.NewBuffer(p.Name, kind, n)
		for name, s := range res.SecretSymbols {
			pn, idx, ok := splitDisplay(name)
			if !ok || pn != p.Name {
				continue
			}
			v, bound := bind[s.ID]
			if !bound {
				continue
			}
			if kind == interp.CellFloat {
				_ = buf.Store(idx, interp.FloatValue(v.AsFloat()))
			} else {
				_ = buf.Store(idx, interp.IntValue(int64(v.AsInt())))
			}
		}
		if p.Name == outParam {
			outBuf = buf
		}
		args = append(args, interp.PtrValue(interp.Pointer{Obj: buf}))
	}
	ret, err := machine.Call(res.Function, args)
	if err != nil {
		return 0, false
	}
	if f.Sink == SinkReturn {
		return ret.Float(), true
	}
	if outBuf == nil {
		return 0, false
	}
	cell, err := outBuf.Load(outIdx)
	if err != nil {
		return 0, false
	}
	return cell.Float(), true
}
