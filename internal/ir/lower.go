package ir

import (
	"sort"

	"privacyscope/internal/minic"
)

// LowerMiniC lowers a parsed MiniC translation unit into the analysis IR.
// Lowering is 1:1 — one op per source statement, Display carrying the
// statement's source rendering — so engine trace snapshots are unchanged by
// the IR migration.
func LowerMiniC(file *minic.File) *Program {
	prog := &Program{Module: file, Funcs: make(map[string]*Func, len(file.Functions))}
	for _, fn := range file.Functions {
		f := &Func{
			Name:   fn.Name,
			Params: fn.Params,
			Return: fn.Return,
			Pos:    fn.Pos,
		}
		if fn.Body != nil {
			f.Body = lowerBlock(fn.Body)
			f.Calls = collectCalls(f.Body)
		}
		prog.Funcs[fn.Name] = f
	}
	return prog
}

func lowerBlock(b *minic.Block) *BlockOp {
	op := &BlockOp{
		Meta: Meta{Src: minic.StmtString(b), Pos: b.Pos},
		Ops:  make([]Op, 0, len(b.Stmts)),
	}
	for _, s := range b.Stmts {
		op.Ops = append(op.Ops, lowerStmt(s))
	}
	return op
}

func lowerStmt(s minic.Stmt) Op {
	meta := Meta{Src: minic.StmtString(s), Pos: stmtPos(s)}
	switch v := s.(type) {
	case *minic.Block:
		return lowerBlock(v)
	case *minic.EmptyStmt:
		return &EmptyOp{Meta: meta}
	case *minic.DeclStmt:
		return &DeclOp{Meta: meta, Decls: v.Decls}
	case *minic.ExprStmt:
		return &ExprOp{Meta: meta, X: v.X}
	case *minic.IfStmt:
		op := &IfOp{Meta: meta, Cond: v.Cond, Then: lowerStmt(v.Then)}
		if v.Else != nil {
			op.Else = lowerStmt(v.Else)
		}
		return op
	case *minic.WhileStmt:
		return &LoopOp{Meta: meta, Cond: v.Cond, Body: lowerStmt(v.Body)}
	case *minic.ForStmt:
		op := &LoopOp{Meta: meta, Cond: v.Cond, Post: v.Post, Body: lowerStmt(v.Body), Scoped: true}
		if v.Init != nil {
			op.Init = lowerStmt(v.Init)
		}
		return op
	case *minic.DoWhileStmt:
		return &LoopOp{Meta: meta, Cond: v.Cond, Body: lowerStmt(v.Body), PostTest: true}
	case *minic.SwitchStmt:
		op := &SwitchOp{Meta: meta, Tag: v.Tag, Cases: make([]SwitchCase, len(v.Cases))}
		for i, c := range v.Cases {
			body := make([]Op, len(c.Body))
			for j, cs := range c.Body {
				body[j] = lowerStmt(cs)
			}
			op.Cases[i] = SwitchCase{Value: c.Value, IsDefault: c.IsDefault, Body: body, Pos: c.Pos}
		}
		return op
	case *minic.ReturnStmt:
		return &ReturnOp{Meta: meta, X: v.X}
	case *minic.BreakStmt:
		return &BreakOp{Meta: meta}
	case *minic.ContinueStmt:
		return &ContinueOp{Meta: meta}
	default:
		// The parser cannot produce other statement forms; lower to a no-op
		// so a future AST extension degrades soft instead of crashing.
		return &EmptyOp{Meta: meta}
	}
}

func stmtPos(s minic.Stmt) minic.Pos {
	switch v := s.(type) {
	case *minic.Block:
		return v.Pos
	case *minic.EmptyStmt:
		return v.Pos
	case *minic.DeclStmt:
		return v.Pos
	case *minic.ExprStmt:
		return v.Pos
	case *minic.IfStmt:
		return v.Pos
	case *minic.WhileStmt:
		return v.Pos
	case *minic.ForStmt:
		return v.Pos
	case *minic.DoWhileStmt:
		return v.Pos
	case *minic.SwitchStmt:
		return v.Pos
	case *minic.ReturnStmt:
		return v.Pos
	case *minic.BreakStmt:
		return v.Pos
	case *minic.ContinueStmt:
		return v.Pos
	default:
		return minic.Pos{}
	}
}

// collectCalls walks the op tree and gathers the names of all syntactic
// call targets, deduplicated and sorted.
func collectCalls(body *BlockOp) []string {
	seen := map[string]bool{}
	var walkExpr func(e minic.Expr)
	walkExpr = func(e minic.Expr) {
		switch v := e.(type) {
		case nil:
			return
		case *minic.CallExpr:
			seen[v.Fun] = true
			for _, a := range v.Args {
				walkExpr(a)
			}
		case *minic.BinExpr:
			walkExpr(v.L)
			walkExpr(v.R)
		case *minic.UnExpr:
			walkExpr(v.X)
		case *minic.AssignExpr:
			walkExpr(v.LHS)
			walkExpr(v.RHS)
		case *minic.IncDecExpr:
			walkExpr(v.X)
		case *minic.IndexExpr:
			walkExpr(v.X)
			walkExpr(v.Index)
		case *minic.MemberExpr:
			walkExpr(v.X)
		case *minic.DerefExpr:
			walkExpr(v.X)
		case *minic.AddrExpr:
			walkExpr(v.X)
		case *minic.CastExpr:
			walkExpr(v.X)
		case *minic.CondExpr:
			walkExpr(v.Cond)
			walkExpr(v.Then)
			walkExpr(v.Else)
		}
	}
	var walkOp func(op Op)
	walkOps := func(ops []Op) {
		for _, o := range ops {
			walkOp(o)
		}
	}
	walkOp = func(op Op) {
		switch v := op.(type) {
		case nil:
			return
		case *BlockOp:
			walkOps(v.Ops)
		case *DeclOp:
			for _, d := range v.Decls {
				walkExpr(d.Init)
			}
		case *ExprOp:
			walkExpr(v.X)
		case *IfOp:
			walkExpr(v.Cond)
			walkOp(v.Then)
			if v.Else != nil {
				walkOp(v.Else)
			}
		case *LoopOp:
			if v.Init != nil {
				walkOp(v.Init)
			}
			walkExpr(v.Cond)
			walkExpr(v.Post)
			walkOp(v.Body)
		case *SwitchOp:
			walkExpr(v.Tag)
			for _, c := range v.Cases {
				walkExpr(c.Value)
				walkOps(c.Body)
			}
		case *ReturnOp:
			walkExpr(v.X)
		}
	}
	walkOp(body)
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
