// Package ir defines the shared analysis IR both front ends lower into: a
// tree of typed operations with source-position and display metadata. The
// symbolic execution engine (internal/symexec) runs over this IR only, so
// PRIML programs (§V) and MiniC enclave code (§VI) are analyzed by one
// engine and one checker kernel instead of two parallel implementations.
//
// The IR is a structured-region op tree rather than a flat basic-block CFG:
// each op corresponds to one source statement and keeps its structured
// control (branch ops own their arms, loop ops own their bodies). This keeps
// lowering 1:1 and reversible — the Table IV trace rows print the op's
// Display string, which is exactly the source statement — while still
// erasing every front-end difference the engine would otherwise need to
// know about. Declassify sites, secret inputs and other front-end-specific
// effects lower to intrinsic calls (see symexec.Options.Intrinsics) and
// NoteOp markers, not to dedicated statement forms.
//
// Expressions are deliberately NOT re-encoded: ops reference minic.Expr
// directly. MiniC's expression grammar is a superset of PRIML's (§V-A), so
// the PRIML front end lowers its expressions into it; inventing a third
// expression language would only add a translation layer with no consumer.
package ir

import (
	"privacyscope/internal/minic"
)

// Program is a lowered module: the source translation unit plus one Func per
// function. The Module is retained because the engine resolves globals and
// struct layouts against it.
type Program struct {
	Module *minic.File
	Funcs  map[string]*Func
}

// Func returns the named function.
func (p *Program) Func(name string) (*Func, bool) {
	f, ok := p.Funcs[name]
	return f, ok
}

// ReachableCalls returns the set of function names statically reachable
// through call expressions from the named entry point (including the entry
// point itself). The engine uses it to decide when parallel path exploration
// is safe: an op region that can reach a decrypt intrinsic mutates shared
// secret-root state mid-path and must stay sequential.
func (p *Program) ReachableCalls(entry string) map[string]bool {
	seen := map[string]bool{entry: true}
	work := []string{entry}
	for len(work) > 0 {
		name := work[len(work)-1]
		work = work[:len(work)-1]
		fn, ok := p.Funcs[name]
		if !ok {
			continue
		}
		for _, callee := range fn.Calls {
			if !seen[callee] {
				seen[callee] = true
				work = append(work, callee)
			}
		}
	}
	return seen
}

// Func is one lowered function.
type Func struct {
	Name   string
	Params []*minic.VarDecl
	Return minic.Type
	// Body is nil for declarations without a definition.
	Body *BlockOp
	// Calls lists the callee names of every call expression in the body
	// (syntactic, deduplicated, unordered reachability seed).
	Calls []string
	Pos   minic.Pos
}

// Op is one IR operation. Every op carries a display string (the source
// statement it was lowered from, driving trace snapshots) and a source
// position.
type Op interface {
	isOp()
	// Display renders the op as its source statement.
	Display() string
	// Position returns the op's source position.
	Position() minic.Pos
}

// Meta is the display/position metadata embedded in every op.
type Meta struct {
	Src string
	Pos minic.Pos
}

// Display implements Op.
func (m Meta) Display() string { return m.Src }

// Position implements Op.
func (m Meta) Position() minic.Pos { return m.Pos }

// BlockOp is a lexical scope containing a sequence of ops.
type BlockOp struct {
	Meta
	Ops []Op
}

func (*BlockOp) isOp() {}

// EmptyOp is a no-op (a bare semicolon, PRIML's skip).
type EmptyOp struct {
	Meta
}

func (*EmptyOp) isOp() {}

// DeclOp declares (and optionally initializes) local variables.
type DeclOp struct {
	Meta
	Decls []*minic.VarDecl
}

func (*DeclOp) isOp() {}

// ExprOp evaluates an expression for effect (assignments, calls,
// declassify intrinsics).
type ExprOp struct {
	Meta
	X minic.Expr
}

func (*ExprOp) isOp() {}

// IfOp is a two-way branch. Else may be nil.
type IfOp struct {
	Meta
	Cond minic.Expr
	Then Op
	Else Op
}

func (*IfOp) isOp() {}

// LoopOp unifies the three C loop forms:
//
//   - while (Cond) Body:            Cond + Body
//   - for (Init; Cond; Post) Body:  Scoped, with optional Init op and Post
//     expression (Cond may be nil for for(;;))
//   - do Body while (Cond):         PostTest — Body runs once before the
//     condition is first evaluated
type LoopOp struct {
	Meta
	// Init runs once before the first condition check (for loops).
	Init Op
	// Cond is the loop condition; nil means loop forever (exit only by
	// break/return, bounded by the engine).
	Cond minic.Expr
	// Post is evaluated after each iteration (for loops).
	Post minic.Expr
	Body Op
	// PostTest marks do-while semantics.
	PostTest bool
	// Scoped opens a scope around the loop (for-loop init variables).
	Scoped bool
}

func (*LoopOp) isOp() {}

// SwitchOp is a C switch with fallthrough semantics.
type SwitchOp struct {
	Meta
	Tag   minic.Expr
	Cases []SwitchCase
}

// SwitchCase is one case arm (or the default when IsDefault).
type SwitchCase struct {
	// Value is the case constant expression (nil for default).
	Value     minic.Expr
	IsDefault bool
	Body      []Op
	Pos       minic.Pos
}

func (*SwitchOp) isOp() {}

// ReturnOp returns from the function; X may be nil.
type ReturnOp struct {
	Meta
	X minic.Expr
}

func (*ReturnOp) isOp() {}

// BreakOp exits the innermost loop or switch.
type BreakOp struct {
	Meta
}

func (*BreakOp) isOp() {}

// ContinueOp jumps to the next loop iteration.
type ContinueOp struct {
	Meta
}

func (*ContinueOp) isOp() {}

// NoteOp is a zero-cost front-end marker: the engine invokes
// Options.NoteHook with Data and the current state view, without stepping,
// costing or snapshotting. The PRIML adapter uses NoteOps to rebuild the
// Tables II/III simulation rows from engine state.
type NoteOp struct {
	Meta
	Data any
}

func (*NoteOp) isOp() {}
