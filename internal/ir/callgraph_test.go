package ir

import (
	"strings"
	"testing"

	"privacyscope/internal/minic"
)

func lowerSrc(t *testing.T, src string) *Program {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return LowerMiniC(file)
}

func TestCallSCCsBottomUp(t *testing.T) {
	prog := lowerSrc(t, `
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) * 2; }
int top(int x) { return mid(x) + leaf(x); }
`)
	sccs := prog.CallSCCs()
	pos := map[string]int{}
	for i, c := range sccs {
		if len(c.Funcs) != 1 || c.Recursive {
			t.Fatalf("unexpected component %+v", c)
		}
		pos[c.Funcs[0]] = i
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["top"]) {
		t.Errorf("not callees-first: %v", sccs)
	}
}

func TestCallSCCsRecursion(t *testing.T) {
	prog := lowerSrc(t, `
int self(int x) { if (x > 0) { return self(x - 1); } return 0; }
int ping(int x);
int pong(int x) { return ping(x - 1); }
int ping(int x) { if (x > 0) { return pong(x); } return 0; }
int plain(int x) { return self(x) + ping(x); }
`)
	sccs := prog.CallSCCs()
	var selfRec, cycleRec bool
	for _, c := range sccs {
		switch strings.Join(c.Funcs, ",") {
		case "self":
			selfRec = c.Recursive
		case "ping,pong":
			cycleRec = c.Recursive
		case "plain":
			if c.Recursive {
				t.Errorf("plain marked recursive")
			}
		}
	}
	if !selfRec {
		t.Errorf("self-loop not marked recursive: %v", sccs)
	}
	if !cycleRec {
		t.Errorf("ping/pong cycle not found or not recursive: %v", sccs)
	}
}

func TestCallSCCsIgnoresExterns(t *testing.T) {
	prog := lowerSrc(t, `
int helper(int x) { return printf("%d", x); }
int f(int x) { return helper(x); }
`)
	for _, c := range prog.CallSCCs() {
		for _, n := range c.Funcs {
			if n == "printf" {
				t.Fatalf("extern in SCC output: %v", c)
			}
		}
	}
}
