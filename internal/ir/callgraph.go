package ir

import "sort"

// SCC is one strongly connected component of the defined-function call
// graph. Funcs is sorted by name; Recursive reports a call cycle — a
// component of more than one function, or a single function that calls
// itself.
type SCC struct {
	Funcs     []string
	Recursive bool
}

// CallSCCs computes the strongly connected components of the call graph
// restricted to defined functions (calls to externs and builtins are not
// edges), returned callees-first: every call from a function in component
// i to a function outside it lands in some component j < i. Iterating the
// result in order therefore visits every callee before any of its callers
// — the order a bottom-up summary construction needs. The traversal is
// deterministic: roots and edges are visited in sorted name order
// (Func.Calls is already deduplicated and sorted by the lowerer).
func (p *Program) CallSCCs() []SCC {
	names := make([]string, 0, len(p.Funcs))
	for name, fn := range p.Funcs {
		if fn.Body != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	defined := make(map[string]bool, len(names))
	for _, n := range names {
		defined[n] = true
	}

	// Tarjan. Indices are assigned in deterministic DFS order; components
	// complete callees-first, which is exactly the output order.
	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[string]*nodeState, len(names))
	var stack []string
	var out []SCC
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		st := &nodeState{index: next, lowlink: next}
		next++
		states[v] = st
		stack = append(stack, v)
		st.onStack = true

		for _, w := range p.Funcs[v].Calls {
			if !defined[w] {
				continue
			}
			ws, seen := states[w]
			switch {
			case !seen:
				strongconnect(w)
				if l := states[w].lowlink; l < st.lowlink {
					st.lowlink = l
				}
			case ws.onStack:
				if ws.index < st.lowlink {
					st.lowlink = ws.index
				}
			}
		}

		if st.lowlink == st.index {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			recursive := len(comp) > 1
			if !recursive {
				for _, callee := range p.Funcs[comp[0]].Calls {
					if callee == comp[0] {
						recursive = true
						break
					}
				}
			}
			out = append(out, SCC{Funcs: comp, Recursive: recursive})
		}
	}

	for _, n := range names {
		if _, seen := states[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}
