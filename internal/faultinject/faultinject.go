// Package faultinject is a test-only fault harness for the fail-soft
// pipeline. It wraps an obs.Observer and turns the analyzer's own telemetry
// stream into deterministic fault trigger points: every counter bump, event
// and span start is a named signal, and a fault armed on "symexec.steps" #100
// fires on exactly the hundredth evaluated statement — no sleeps, no timing
// races.
//
// Faults available:
//
//   - PanicOn(name, n): panic at the nth occurrence of the signal, to prove
//     panic isolation (one crashing entry point must not take down the run).
//   - DelayOn(name, d): sleep d at every occurrence, to force wall-clock
//     deadlines to expire mid-exploration.
//   - HookOn(name, n, fn): run fn at the nth occurrence — e.g. cancel a
//     context mid-run at a known statement count.
//
// ScopeFunction restricts all faults to one entry point: the injector arms
// when it sees the check.start event carrying that function name and
// disarms at the matching check.done/check.panic. Scoping relies on the
// events of one function not interleaving with another's, so use it with
// sequential analysis only (the default); unscoped injectors are safe under
// WithParallelism.
//
// Parallel path exploration (Options.PathWorkers) adds its own signals:
// symexec.workers.spawned fires on the requesting goroutine just before a
// branch is handed to a pool worker, symexec.workers.inline when a branch
// runs on the requesting goroutine instead, and symexec.workers.panics when
// a captured worker panic is recorded (once per pool nesting level it
// unwinds through). A PanicOn("symexec.steps", n) under PathWorkers > 1
// fires on whichever goroutine evaluates the nth statement — exactly the
// nondeterminism the worker-pool isolation tests need to survive.
//
// See docs/ROBUSTNESS.md.
package faultinject

import (
	"fmt"
	"sync"
	"time"

	"privacyscope/internal/obs"
	"privacyscope/internal/symexec"
)

// Injector is an obs.Observer that forwards everything to an inner observer
// and fires configured faults keyed on signal names. Safe for concurrent
// use when unscoped; configure before the analysis starts.
type Injector struct {
	inner obs.Observer

	mu     sync.Mutex
	scope  string // entry function the faults apply to; "" = always armed
	armed  bool
	counts map[string]int
	faults map[string][]*fault
}

type fault struct {
	at      int // 1-based armed occurrence to fire on; 0 = every occurrence
	seen    int // armed occurrences seen so far
	delay   time.Duration
	doPanic bool
	hook    func()
	fired   bool
}

// New returns an Injector forwarding to inner (nil means the no-op
// observer).
func New(inner obs.Observer) *Injector {
	return &Injector{
		inner:  obs.Or(inner),
		armed:  true,
		counts: make(map[string]int),
		faults: make(map[string][]*fault),
	}
}

// ScopeFunction arms the faults only while fn is being checked (between its
// check.start and check.done/check.panic events). Sequential analysis only.
func (i *Injector) ScopeFunction(fn string) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.scope = fn
	i.armed = false
	return i
}

// PanicOn makes the nth occurrence of the named signal panic, simulating an
// engine bug at a deterministic point.
func (i *Injector) PanicOn(name string, n int) *Injector {
	return i.add(name, &fault{at: n, doPanic: true})
}

// DelayOn sleeps d at every occurrence of the named signal, slowing the
// analysis enough for wall-clock deadlines to expire.
func (i *Injector) DelayOn(name string, d time.Duration) *Injector {
	return i.add(name, &fault{delay: d})
}

// HookOn runs fn at the nth occurrence of the named signal (once).
func (i *Injector) HookOn(name string, n int, fn func()) *Injector {
	return i.add(name, &fault{at: n, hook: fn})
}

func (i *Injector) add(name string, f *fault) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faults[name] = append(i.faults[name], f)
	return i
}

// Count reports how many times the named signal has been seen (while
// armed or not), for test assertions.
func (i *Injector) Count(name string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts[name]
}

// hit records one occurrence of a signal and fires any due faults. Panics
// propagate to the instrumented call site — that is the point.
func (i *Injector) hit(name string) {
	i.mu.Lock()
	i.counts[name]++
	n := i.counts[name]
	var due []*fault
	if i.armed {
		for _, f := range i.faults[name] {
			if f.fired {
				continue
			}
			if f.at == 0 {
				due = append(due, f)
				continue
			}
			// Occurrences count only while armed, so a ScopeFunction fault
			// at #n means "the nth signal inside that function's window".
			f.seen++
			if f.seen == f.at {
				f.fired = true
				due = append(due, f)
			}
		}
	}
	i.mu.Unlock()
	for _, f := range due {
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		if f.hook != nil {
			f.hook()
		}
		if f.doPanic {
			panic(fmt.Sprintf("faultinject: %s #%d", name, n))
		}
	}
}

// arm flips the scope gate on check lifecycle events.
func (i *Injector) arm(event string, fields []obs.Field) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.scope == "" {
		return
	}
	var fn string
	for _, f := range fields {
		if f.Key == "function" {
			fn = f.Value
		}
	}
	switch event {
	case "check.start":
		i.armed = fn == i.scope
	case "check.done", "check.panic":
		if fn == i.scope {
			i.armed = false
		}
	}
}

// StartSpan implements obs.Observer.
func (i *Injector) StartSpan(name string) obs.Span {
	i.hit(name)
	return injSpan{name: name, inner: i.inner.StartSpan(name), inj: i}
}

// Add implements obs.Observer.
func (i *Injector) Add(name string, delta int64) {
	i.hit(name)
	i.inner.Add(name, delta)
}

// Observe implements obs.Observer.
func (i *Injector) Observe(name string, value int64) {
	i.hit(name)
	i.inner.Observe(name, value)
}

// Event implements obs.Observer. Scope arming happens before fault
// dispatch, so a fault on check.start itself fires only for the scoped
// function.
func (i *Injector) Event(name string, fields ...obs.Field) {
	i.arm(name, fields)
	i.hit(name)
	i.inner.Event(name, fields...)
}

type injSpan struct {
	name  string
	inner obs.Span
	inj   *Injector
}

func (s injSpan) Child(name string) obs.Span {
	full := s.name + "/" + name
	s.inj.hit(full)
	return injSpan{name: full, inner: s.inner.Child(name), inj: s.inj}
}

func (s injSpan) Annotate(fields ...obs.Field) { s.inner.Annotate(fields...) }

func (s injSpan) End() { s.inner.End() }

// Pressure returns a copy of opts with the exploration budgets clamped to
// n paths and n steps — the cheap way to force degraded coverage on any
// nontrivial module without waiting for real work.
func Pressure(opts symexec.Options, n int) symexec.Options {
	opts.MaxPaths = n
	opts.MaxSteps = n
	return opts
}
