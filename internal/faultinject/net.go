package faultinject

// This file is the network layer of the fault harness: where the Injector
// turns the analyzer's telemetry stream into deterministic trigger points,
// Transport does the same for HTTP traffic. It wraps an http.RoundTripper
// and keys faults on (target host, per-host request ordinal), so "refuse
// worker 2's third request", "cut this response mid-body" or "kill worker 1
// on its Kth request" are exact, replayable events — no real processes die
// and no timing races decide which request fails.
//
// Faults available (n is 1-based and counts requests per host):
//
//   - RefuseOn(host, n): the nth request to host fails with a
//     connection-refused-style transport error; later requests pass.
//   - KillAfter(host, n): the nth and every later request to host fail the
//     same way — the network view of a worker that died mid-batch.
//   - CutOn(host, n): the nth response is severed after a few body bytes;
//     the reader gets io.ErrUnexpectedEOF mid-envelope.
//   - DelayOn(host, n, d): the nth request stalls d before being forwarded —
//     a latency spike that trips per-attempt timeouts.
//   - HookOn(host, n, fn): run fn just before forwarding the nth request
//     (e.g. close a real listener so the kill is a kill, not a simulation).
//
// host matches request URL hosts exactly ("127.0.0.1:41231"); the empty
// host matches every request. See docs/ROBUSTNESS.md.

import (
	"errors"
	"io"
	"net/http"
	"sync"
	"time"
)

// ErrRefused is the transport error refused and killed requests fail with.
// It models a connection-refused dial error: the request never reached the
// server, so retrying it is always safe.
var ErrRefused = errors.New("faultinject: connection refused")

// Transport is a deterministic fault-injecting http.RoundTripper. Configure
// before use; safe for concurrent use afterwards (request ordinals are
// assigned under a lock, so "the nth request to host" is well defined even
// when requests race).
type Transport struct {
	inner http.RoundTripper

	mu     sync.Mutex
	counts map[string]int
	faults []*netFault
}

type netFault struct {
	host  string // "" matches any host
	at    int    // 1-based ordinal; 0 = every request
	open  bool   // fire on every request from the at-th onward
	kind  netFaultKind
	delay time.Duration
	hook  func()
	cut   int // body bytes allowed through before the cut
}

type netFaultKind int

const (
	faultRefuse netFaultKind = iota
	faultCut
	faultDelay
	faultHook
)

// NewTransport wraps inner (nil: http.DefaultTransport) with an empty fault
// set — until faults are added it is a transparent pass-through.
func NewTransport(inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, counts: make(map[string]int)}
}

// RefuseOn makes the nth request to host fail with ErrRefused.
func (t *Transport) RefuseOn(host string, n int) *Transport {
	return t.add(&netFault{host: host, at: n, kind: faultRefuse})
}

// KillAfter kills the worker at host from its nth request on: that request
// and every later one fail with ErrRefused, exactly what a coordinator sees
// when a worker process dies mid-batch.
func (t *Transport) KillAfter(host string, n int) *Transport {
	return t.add(&netFault{host: host, at: n, open: true, kind: faultRefuse})
}

// CutOn severs the nth response from host mid-body: the first few bytes
// arrive, then the reader fails with io.ErrUnexpectedEOF.
func (t *Transport) CutOn(host string, n int) *Transport {
	return t.add(&netFault{host: host, at: n, kind: faultCut, cut: 16})
}

// DelayOn stalls the nth request to host for d before forwarding it.
func (t *Transport) DelayOn(host string, n int, d time.Duration) *Transport {
	return t.add(&netFault{host: host, at: n, kind: faultDelay, delay: d})
}

// HookOn runs fn just before forwarding the nth request to host.
func (t *Transport) HookOn(host string, n int, fn func()) *Transport {
	return t.add(&netFault{host: host, at: n, kind: faultHook, hook: fn})
}

func (t *Transport) add(f *netFault) *Transport {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults = append(t.faults, f)
	return t
}

// Requests reports how many requests have been issued to host — for test
// assertions ("the coordinator retried twice").
func (t *Transport) Requests(host string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[host]
}

// RoundTrip implements http.RoundTripper: assign the request its per-host
// ordinal, fire any due faults, then forward (or refuse).
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.mu.Lock()
	t.counts[host]++
	n := t.counts[host]
	var due []*netFault
	for _, f := range t.faults {
		if f.host != "" && f.host != host {
			continue
		}
		switch {
		case f.at == 0, f.at == n, f.open && n >= f.at:
			due = append(due, f)
		}
	}
	t.mu.Unlock()

	var cutAfter = -1
	for _, f := range due {
		switch f.kind {
		case faultDelay:
			time.Sleep(f.delay)
		case faultHook:
			if f.hook != nil {
				f.hook()
			}
		case faultRefuse:
			return nil, ErrRefused
		case faultCut:
			cutAfter = f.cut
		}
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || cutAfter < 0 {
		return resp, err
	}
	resp.Body = &cutBody{inner: resp.Body, remaining: cutAfter}
	return resp, nil
}

// cutBody lets remaining bytes through, then fails the read — a connection
// severed mid-response.
type cutBody struct {
	inner     io.ReadCloser
	remaining int
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if err == io.EOF {
		// The body ended inside the allowance; the cut never engaged.
		return n, err
	}
	if b.remaining <= 0 {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *cutBody) Close() error { return b.inner.Close() }
