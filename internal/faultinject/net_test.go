package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// get issues one GET through the transport and fully reads the body.
func get(t *testing.T, client *http.Client, url string) ([]byte, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func newTarget(t *testing.T, body string) (*httptest.Server, string) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts, strings.TrimPrefix(ts.URL, "http://")
}

// TestRefuseOnIsOneShot: exactly the nth request fails; the ones around it
// pass untouched.
func TestRefuseOnIsOneShot(t *testing.T) {
	ts, host := newTarget(t, "ok")
	tr := NewTransport(nil).RefuseOn(host, 2)
	client := &http.Client{Transport: tr}

	if _, err := get(t, client, ts.URL); err != nil {
		t.Fatalf("request 1 should pass: %v", err)
	}
	if _, err := get(t, client, ts.URL); !errors.Is(err, ErrRefused) {
		t.Fatalf("request 2 should be refused, got %v", err)
	}
	if _, err := get(t, client, ts.URL); err != nil {
		t.Fatalf("request 3 should pass again: %v", err)
	}
	if n := tr.Requests(host); n != 3 {
		t.Fatalf("Requests(%s) = %d, want 3 (refused attempts count)", host, n)
	}
}

// TestKillAfterIsPermanent: from the nth request on, the host is dead — the
// network view of a worker process that died mid-batch.
func TestKillAfterIsPermanent(t *testing.T) {
	ts, host := newTarget(t, "ok")
	client := &http.Client{Transport: NewTransport(nil).KillAfter(host, 2)}

	if _, err := get(t, client, ts.URL); err != nil {
		t.Fatalf("request 1 should pass: %v", err)
	}
	for i := 2; i <= 4; i++ {
		if _, err := get(t, client, ts.URL); !errors.Is(err, ErrRefused) {
			t.Fatalf("request %d should be refused, got %v", i, err)
		}
	}
}

// TestCutOnSeversMidBody: the nth response delivers a few bytes, then the
// reader fails mid-envelope with ErrUnexpectedEOF.
func TestCutOnSeversMidBody(t *testing.T) {
	long := strings.Repeat("x", 4096)
	ts, host := newTarget(t, long)
	client := &http.Client{Transport: NewTransport(nil).CutOn(host, 1)}

	data, err := get(t, client, ts.URL)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("cut read error = %v, want ErrUnexpectedEOF", err)
	}
	if len(data) == 0 || len(data) >= len(long) {
		t.Fatalf("cut let %d bytes through, want a strict mid-body prefix", len(data))
	}
	// The next response is whole again.
	data, err = get(t, client, ts.URL)
	if err != nil || string(data) != long {
		t.Fatalf("request 2 should pass whole, got %d bytes, err %v", len(data), err)
	}
}

// TestCutShorterThanAllowance: a body that ends inside the allowance is not
// an error — the cut never engages.
func TestCutShorterThanAllowance(t *testing.T) {
	ts, host := newTarget(t, "tiny")
	client := &http.Client{Transport: NewTransport(nil).CutOn(host, 1)}
	data, err := get(t, client, ts.URL)
	if err != nil || string(data) != "tiny" {
		t.Fatalf("short body should pass whole, got %q, err %v", data, err)
	}
}

// TestDelayOnStalls: the nth request observes the injected latency spike.
func TestDelayOnStalls(t *testing.T) {
	ts, host := newTarget(t, "ok")
	client := &http.Client{Transport: NewTransport(nil).DelayOn(host, 1, 30*time.Millisecond)}
	start := time.Now()
	if _, err := get(t, client, ts.URL); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed request completed in %v, want ≥ 30ms", d)
	}
}

// TestHookOnFires: the hook runs exactly once, before the nth request is
// forwarded.
func TestHookOnFires(t *testing.T) {
	ts, host := newTarget(t, "ok")
	fired := 0
	client := &http.Client{Transport: NewTransport(nil).HookOn(host, 2, func() { fired++ })}
	get(t, client, ts.URL)
	if fired != 0 {
		t.Fatal("hook fired before its ordinal")
	}
	get(t, client, ts.URL)
	get(t, client, ts.URL)
	if fired != 1 {
		t.Fatalf("hook fired %d times, want exactly 1", fired)
	}
}

// TestEmptyHostMatchesAll: a fault with no host hits every target.
func TestEmptyHostMatchesAll(t *testing.T) {
	ts1, _ := newTarget(t, "a")
	ts2, _ := newTarget(t, "b")
	client := &http.Client{Transport: NewTransport(nil).KillAfter("", 1)}
	if _, err := get(t, client, ts1.URL); !errors.Is(err, ErrRefused) {
		t.Fatalf("target 1 not refused: %v", err)
	}
	if _, err := get(t, client, ts2.URL); !errors.Is(err, ErrRefused) {
		t.Fatalf("target 2 not refused: %v", err)
	}
}

// TestOrdinalsAreRaceFree: concurrent requests still receive well-defined
// per-host ordinals — exactly one of N concurrent requests is the refused
// nth.
func TestOrdinalsAreRaceFree(t *testing.T) {
	ts, host := newTarget(t, "ok")
	tr := NewTransport(nil).RefuseOn(host, 5)
	client := &http.Client{Transport: tr}

	const n = 16
	var wg sync.WaitGroup
	refused := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := get(t, client, ts.URL); errors.Is(err, ErrRefused) {
				refused <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(refused)
	count := 0
	for range refused {
		count++
	}
	if count != 1 {
		t.Fatalf("%d requests refused, want exactly 1", count)
	}
	if got := tr.Requests(host); got != n {
		t.Fatalf("Requests = %d, want %d", got, n)
	}
}
