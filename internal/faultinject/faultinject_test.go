package faultinject

import (
	"testing"
	"time"

	"privacyscope/internal/obs"
	"privacyscope/internal/symexec"
)

func TestPanicOnNthOccurrence(t *testing.T) {
	inj := New(nil).PanicOn("sig", 3)
	inj.Add("sig", 1)
	inj.Add("sig", 1)
	defer func() {
		if recover() == nil {
			t.Error("third occurrence must panic")
		}
		if inj.Count("sig") != 3 {
			t.Errorf("count = %d, want 3", inj.Count("sig"))
		}
	}()
	inj.Add("sig", 1)
}

func TestPanicFiresOnce(t *testing.T) {
	inj := New(nil).PanicOn("sig", 1)
	func() {
		defer func() { recover() }()
		inj.Add("sig", 1)
	}()
	inj.Add("sig", 1) // must not panic again
}

func TestHookOn(t *testing.T) {
	fired := 0
	inj := New(nil).HookOn("sig", 2, func() { fired++ })
	inj.Observe("sig", 7)
	inj.Observe("sig", 7)
	inj.Observe("sig", 7)
	if fired != 1 {
		t.Errorf("hook fired %d times, want exactly once (at #2)", fired)
	}
}

func TestDelayOnEveryOccurrence(t *testing.T) {
	inj := New(nil).DelayOn("sig", time.Millisecond)
	start := time.Now()
	inj.Add("sig", 1)
	inj.Add("sig", 1)
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Errorf("two delayed hits took %v, want >= 2ms", d)
	}
}

func TestScopeFunctionArming(t *testing.T) {
	fired := 0
	inj := New(nil).ScopeFunction("target").HookOn("sig", 1, func() { fired++ })

	// Unarmed before any check.start: signal does not trigger.
	inj.Add("sig", 1)
	// Another function's window: still unarmed.
	inj.Event("check.start", obs.F("function", "other"))
	inj.Add("sig", 1)
	inj.Event("check.done", obs.F("function", "other"))
	if fired != 0 {
		t.Fatal("fault fired outside its scoped function")
	}
	// The scoped function's window: armed.
	inj.Event("check.start", obs.F("function", "target"))
	inj.Add("sig", 1)
	if fired != 1 {
		t.Fatal("fault must fire inside its scoped function")
	}
	inj.Event("check.done", obs.F("function", "target"))
}

func TestForwardsToInner(t *testing.T) {
	m := obs.NewMetrics()
	inj := New(m)
	inj.Add("c", 2)
	inj.Add("c", 3)
	sp := inj.StartSpan("phase")
	sp.Child("sub").End()
	sp.End()
	if m.Counter("c") != 5 {
		t.Errorf("inner counter = %d, want 5", m.Counter("c"))
	}
	if inj.Count("phase") != 1 || inj.Count("phase/sub") != 1 {
		t.Error("span starts must register as signals")
	}
}

func TestPressure(t *testing.T) {
	got := Pressure(symexec.DefaultOptions(), 3)
	if got.MaxPaths != 3 || got.MaxSteps != 3 {
		t.Errorf("Pressure: MaxPaths=%d MaxSteps=%d, want 3/3", got.MaxPaths, got.MaxSteps)
	}
	if !got.PruneInfeasible {
		t.Error("Pressure must keep unrelated options")
	}
}
