package faultinject

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"privacyscope/internal/diskcache"
)

// ErrDiskFull is the error injected write faults return, standing in for
// ENOSPC.
var ErrDiskFull = errors.New("faultinject: no space left on device")

// DiskFS wraps a diskcache.FS with deterministic disk faults, extending the
// observer-signal harness above to the persistence layer. Faults trigger on
// the nth entry write (temp-file WriteFile of a cache entry; 1-based,
// counting only entry writes so directory bookkeeping never shifts the
// count):
//
//   - FailWriteAt(n): the write returns ErrDiskFull having written nothing
//     (disk full). The cache must degrade to "not cached", never error the
//     analysis.
//   - ShortWriteAt(n): only the first half of the data reaches disk and
//     the write reports success — the lost-page-cache crash shape. The
//     resulting entry is visible but truncated; a later Get must detect
//     the corruption and degrade to a miss.
//   - CorruptAt(n): the data is written in full with one payload byte
//     flipped, again reporting success — silent media corruption. Same
//     required degradation.
//
// All faults are one-shot at their ordinal and safe for concurrent use.
type DiskFS struct {
	inner diskcache.FS

	mu      sync.Mutex
	writes  int
	faults  map[int]diskFaultKind
	tripped int
}

type diskFaultKind int

const (
	faultNone diskFaultKind = iota
	faultFail
	faultShort
	faultCorrupt
)

// NewDiskFS wraps inner (nil means the real filesystem).
func NewDiskFS(inner diskcache.FS) *DiskFS {
	if inner == nil {
		inner = diskcache.OSFS()
	}
	return &DiskFS{inner: inner, faults: make(map[int]diskFaultKind)}
}

// FailWriteAt arms a disk-full fault on the nth entry write.
func (d *DiskFS) FailWriteAt(n int) *DiskFS { return d.arm(n, faultFail) }

// ShortWriteAt arms a silent short write on the nth entry write.
func (d *DiskFS) ShortWriteAt(n int) *DiskFS { return d.arm(n, faultShort) }

// CorruptAt arms a silent byte flip on the nth entry write.
func (d *DiskFS) CorruptAt(n int) *DiskFS { return d.arm(n, faultCorrupt) }

func (d *DiskFS) arm(n int, k diskFaultKind) *DiskFS {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faults[n] = k
	return d
}

// Writes reports how many entry writes the cache attempted.
func (d *DiskFS) Writes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// Tripped reports how many armed faults have fired.
func (d *DiskFS) Tripped() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tripped
}

// isEntryWrite recognizes cache-entry temp files (the only payload-bearing
// writes the cache issues).
func isEntryWrite(name string) bool {
	return strings.Contains(filepath.Base(name), ".psc.tmp.")
}

// WriteFile implements diskcache.FS with the armed faults.
func (d *DiskFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if !isEntryWrite(name) {
		return d.inner.WriteFile(name, data, perm)
	}
	d.mu.Lock()
	d.writes++
	kind := d.faults[d.writes]
	if kind != faultNone {
		d.tripped++
	}
	d.mu.Unlock()
	switch kind {
	case faultFail:
		return ErrDiskFull
	case faultShort:
		return d.inner.WriteFile(name, data[:len(data)/2], perm)
	case faultCorrupt:
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)-1] ^= 0xFF // last byte: inside the payload
		return d.inner.WriteFile(name, flipped, perm)
	default:
		return d.inner.WriteFile(name, data, perm)
	}
}

// The remaining methods delegate unchanged.

func (d *DiskFS) MkdirAll(path string, perm os.FileMode) error { return d.inner.MkdirAll(path, perm) }
func (d *DiskFS) ReadFile(name string) ([]byte, error)         { return d.inner.ReadFile(name) }
func (d *DiskFS) Rename(oldpath, newpath string) error         { return d.inner.Rename(oldpath, newpath) }
func (d *DiskFS) Remove(name string) error                     { return d.inner.Remove(name) }
func (d *DiskFS) ReadDir(name string) ([]fs.DirEntry, error)   { return d.inner.ReadDir(name) }
func (d *DiskFS) Chtimes(name string, atime, mtime time.Time) error {
	return d.inner.Chtimes(name, atime, mtime)
}
