package symexec

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
)

// summarySrc exercises pure helpers in expression position (nested,
// shared across branches), statement position, and call chains.
const summarySrc = `
int scale(int x) { return x * 3 + 1; }
int combine(int a, int b) { return scale(a) + scale(b) - a; }
int clamp(int v) { if (v > 100) { return 100; } return v; }
int enclave_f(char *secrets, char *output)
{
    int t = combine(secrets[0], secrets[1]);
    combine(t, 2);
    output[0] = clamp(t);
    if (scale(secrets[0]) > 10)
        return 1;
    return 0;
}
`

func summaryParams() []ParamSpec {
	return []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}
}

// buildTable builds a summary table for src with the given options.
func buildTable(t *testing.T, src string, opts Options, bc SummaryBuildConfig) (*minic.File, *SummaryTable) {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return file, BuildSummaryTable(context.Background(), file, opts, bc)
}

// runBoth analyzes fn in inline mode and in summary mode with otherwise
// identical options.
func runBoth(t *testing.T, src, fn string, params []ParamSpec, opts Options) (inline, summary *Result) {
	t.Helper()
	file, table := buildTable(t, src, opts, SummaryBuildConfig{})
	iRes, err := New(file, opts).AnalyzeFunction(context.Background(), fn, params)
	if err != nil {
		t.Fatal(err)
	}
	sOpts := opts
	sOpts.Summaries = true
	sOpts.SummaryTable = table
	sRes, err := New(file, sOpts).AnalyzeFunction(context.Background(), fn, params)
	if err != nil {
		t.Fatal(err)
	}
	return iRes, sRes
}

// requireIdentical asserts the observable byte-identity contract between
// inline and summary mode.
func requireIdentical(t *testing.T, inline, summary *Result) {
	t.Helper()
	if len(inline.Paths) != len(summary.Paths) {
		t.Fatalf("paths: inline %d, summary %d", len(inline.Paths), len(summary.Paths))
	}
	for i := range inline.Paths {
		ip, sp := inline.Paths[i], summary.Paths[i]
		if ip.PC.String() != sp.PC.String() {
			t.Errorf("path %d PC: inline %s, summary %s", i, ip.PC, sp.PC)
		}
		if fmt.Sprint(ip.Return) != fmt.Sprint(sp.Return) {
			t.Errorf("path %d return: inline %v, summary %v", i, ip.Return, sp.Return)
		}
		if ip.Cost != sp.Cost {
			t.Errorf("path %d cost: inline %d, summary %d", i, ip.Cost, sp.Cost)
		}
		if len(ip.Outs) != len(sp.Outs) {
			t.Fatalf("path %d outs: inline %d, summary %d", i, len(ip.Outs), len(sp.Outs))
		}
		for j := range ip.Outs {
			if ip.Outs[j].Display != sp.Outs[j].Display ||
				fmt.Sprint(ip.Outs[j].Value) != fmt.Sprint(sp.Outs[j].Value) {
				t.Errorf("path %d out %d: inline %s=%v, summary %s=%v", i, j,
					ip.Outs[j].Display, ip.Outs[j].Value, sp.Outs[j].Display, sp.Outs[j].Value)
			}
		}
	}
	if fmt.Sprint(inline.Warnings) != fmt.Sprint(summary.Warnings) {
		t.Errorf("warnings: inline %v, summary %v", inline.Warnings, summary.Warnings)
	}
	if inline.Coverage != summary.Coverage {
		t.Errorf("coverage: inline %+v, summary %+v", inline.Coverage, summary.Coverage)
	}
	if inline.States != summary.States {
		t.Errorf("states: inline %d, summary %d", inline.States, summary.States)
	}
	if inline.Regions != summary.Regions {
		t.Errorf("regions: inline %d, summary %d", inline.Regions, summary.Regions)
	}
}

func TestSummaryClassification(t *testing.T) {
	src := `
int pure_leaf(int x) { return x + 1; }
int pure_mid(int x) { return pure_leaf(x) * 2; }
int impure(int *p) { return p[0]; }
int rec(int x) { if (x > 0) { return rec(x - 1); } return 0; }
int noisy(int x) { printf("%d", x); return x; }
int entry(int *p, int x) { return pure_mid(x) + impure(p) + rec(x) + noisy(x); }
`
	opts := DefaultOptions()
	_, table := buildTable(t, src, opts, SummaryBuildConfig{})
	wantKinds := map[string]SummaryKind{
		"pure_leaf": SummaryPure,
		"pure_mid":  SummaryPure,
		"impure":    SummaryInline,
		"rec":       SummaryHavoc,
		"noisy":     SummaryInline,
	}
	for name, want := range wantKinds {
		s := table.Lookup(name)
		if s == nil {
			t.Fatalf("no summary for %s", name)
		}
		if s.Kind != want {
			t.Errorf("%s: kind %s, want %s (reason %q)", name, s.Kind, want, s.Reason)
		}
	}
	if table.Lookup("entry") != nil {
		t.Errorf("entry point summarized although nobody calls it")
	}
	if mid := table.Lookup("pure_mid"); mid.Depth != 2 {
		t.Errorf("pure_mid depth %d, want 2", mid.Depth)
	}
	if leaf := table.Lookup("pure_leaf"); !leaf.HasAffine || leaf.AffineCoef[0] != 1 || leaf.AffineConst != 1 {
		t.Errorf("pure_leaf affine relation not derived: %+v", leaf)
	}
	if noisy := table.Lookup("noisy"); len(noisy.Ocalls) != 1 || noisy.Ocalls[0] != "printf" {
		t.Errorf("noisy obligations %v, want [printf]", noisy.Ocalls)
	}
}

func TestSummaryByteIdenticalToInline(t *testing.T) {
	opts := DefaultOptions()
	iRes, sRes := runBoth(t, summarySrc, "enclave_f", summaryParams(), opts)
	if len(iRes.Paths) < 2 {
		t.Fatalf("fixture too weak: %d paths", len(iRes.Paths))
	}
	requireIdentical(t, iRes, sRes)
}

func TestSummaryActuallyApplies(t *testing.T) {
	m := obs.NewMetrics()
	opts := DefaultOptions()
	file, table := buildTable(t, summarySrc, opts, SummaryBuildConfig{})
	opts.Summaries = true
	opts.SummaryTable = table
	opts.Obs = m
	if _, err := New(file, opts).AnalyzeFunction(context.Background(), "enclave_f", summaryParams()); err != nil {
		t.Fatal(err)
	}
	if m.Counter("summary.applied") == 0 {
		t.Errorf("summary mode ran fully inline: summary.applied = 0")
	}
}

// TestSummaryDisabledUnderTrace pins the guard: trace recording observes
// callee-body execution, so summaries must not elide it.
func TestSummaryDisabledUnderTrace(t *testing.T) {
	m := obs.NewMetrics()
	opts := DefaultOptions()
	file, table := buildTable(t, summarySrc, opts, SummaryBuildConfig{})
	opts.Summaries = true
	opts.SummaryTable = table
	opts.TrackTrace = true
	opts.Obs = m
	if _, err := New(file, opts).AnalyzeFunction(context.Background(), "enclave_f", summaryParams()); err != nil {
		t.Fatal(err)
	}
	if n := m.Counter("summary.applied"); n != 0 {
		t.Errorf("summaries applied under TrackTrace: %d", n)
	}
}

// TestSummaryHavocNeverSecure pins the degradation contract: a havoc'd call
// (here: over the summary step budget) truncates coverage so a no-findings
// run reads Inconclusive, and the havoc warning names the skipped
// obligations.
func TestSummaryHavocNeverSecure(t *testing.T) {
	src := `
int busy(int x)
{
    int acc = 0;
    int i;
    for (i = 0; i < 200; i = i + 1) { acc = acc + x; }
    printf("%d", acc);
    return acc;
}
int helper(int x) { return busy(x); }
int enclave_f(char *secrets) { return helper(secrets[0]); }
`
	opts := DefaultOptions()
	opts.SummaryBudget = 10
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	table := BuildSummaryTable(context.Background(), file, opts, SummaryBuildConfig{})
	// busy is impure (printf) → inline; helper calls a non-pure function →
	// inline. Force a budget havoc with a pure over-budget helper instead.
	if s := table.Lookup("busy"); s == nil || s.Kind != SummaryInline {
		t.Fatalf("busy: %+v", s)
	}

	src2 := `
int busy(int x)
{
    int acc = 0;
    int i;
    for (i = 0; i < 200; i = i + 1) { acc = acc + x; }
    return acc;
}
int enclave_f(char *secrets) { return busy(secrets[0]); }
`
	file2, err := minic.Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	table2 := BuildSummaryTable(context.Background(), file2, opts, SummaryBuildConfig{})
	s := table2.Lookup("busy")
	if s == nil || s.Kind != SummaryHavoc {
		t.Fatalf("over-budget pure helper not havoc'd: %+v", s)
	}
	sOpts := opts
	sOpts.Summaries = true
	sOpts.SummaryTable = table2
	res, err := New(file2, sOpts).AnalyzeFunction(context.Background(), "enclave_f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coverage.Truncated || res.Coverage.Reason != TruncSummaryHavoc {
		t.Errorf("havoc did not truncate coverage: %+v", res.Coverage)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "summary havoc at busy") {
			found = true
		}
	}
	if !found {
		t.Errorf("no havoc warning: %v", res.Warnings)
	}
}

// TestSummaryRecursionHavocWarnsObligations pins that a recursive callee
// havocs and its warning names the OCALL sinks the havoc skipped.
func TestSummaryRecursionHavocWarnsObligations(t *testing.T) {
	src := `
int rec(int x)
{
    if (x > 0) { printf("%d", x); return rec(x - 1); }
    return 0;
}
int enclave_f(char *secrets) { return rec(secrets[0]); }
`
	opts := DefaultOptions()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	table := BuildSummaryTable(context.Background(), file, opts, SummaryBuildConfig{})
	if s := table.Lookup("rec"); s == nil || s.Kind != SummaryHavoc || s.Reason != "recursive" {
		t.Fatalf("rec: %+v", s)
	}
	sOpts := opts
	sOpts.Summaries = true
	sOpts.SummaryTable = table
	res, err := New(file, sOpts).AnalyzeFunction(context.Background(), "enclave_f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coverage.Truncated || res.Coverage.Reason != TruncSummaryHavoc {
		t.Errorf("recursion havoc did not truncate coverage: %+v", res.Coverage)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "skipped reachable OCALL sinks: printf") {
			found = true
		}
	}
	if !found {
		t.Errorf("havoc warning does not name skipped sinks: %v", res.Warnings)
	}
}

// TestInlineDepthTruncatesCoverage is the regression test for the
// inline-depth soundness hole: a skipped call (statement position) or an
// unconstrained return (expression position) under-approximates the
// program, so coverage must read truncated — a clean run degrades to
// Inconclusive, never Secure.
func TestInlineDepthTruncatesCoverage(t *testing.T) {
	exprPos := `
int d4(int x) { return x; }
int d3(int x) { return d4(x); }
int d2(int x) { return d3(x); }
int d1(int x) { return d2(x); }
int enclave_f(char *secrets) { return d1(secrets[0]); }
`
	stmtPos := `
int d4(int x) { printf("%d", x); return x; }
int d3(int x) { d4(x); return x; }
int d2(int x) { d3(x); return x; }
int d1(int x) { d2(x); return x; }
int enclave_f(char *secrets) { d1(secrets[0]); return 0; }
`
	for name, src := range map[string]string{"expr": exprPos, "stmt": stmtPos} {
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.InlineDepth = 3
			res := analyzeSrc(t, src, "enclave_f", []ParamSpec{
				{Name: "secrets", Class: ParamSecret},
			}, opts)
			if !res.Coverage.Truncated || res.Coverage.Reason != TruncInlineDepth {
				t.Errorf("depth-exceeded run not marked truncated: %+v", res.Coverage)
			}
			found := false
			for _, w := range res.Warnings {
				if strings.Contains(w, "inline depth exceeded") {
					found = true
				}
			}
			if !found {
				t.Errorf("no depth warning: %v", res.Warnings)
			}
		})
	}
}

// memStore is an in-memory SummaryStore counting traffic.
type memStore struct {
	m    map[string][]byte
	hits int
	puts int
}

func newMemStore() *memStore { return &memStore{m: make(map[string][]byte)} }

func (s *memStore) Get(key string) ([]byte, bool) {
	p, ok := s.m[key]
	if ok {
		s.hits++
	}
	return p, ok
}

func (s *memStore) Put(key string, payload []byte) {
	s.puts++
	s.m[key] = payload
}

// TestSummaryStoreFunctionGranularInvalidation pins the warm-rerun
// contract: an unchanged source recomputes nothing, and editing one helper
// recomputes only that helper and its transitive callers.
func TestSummaryStoreFunctionGranularInvalidation(t *testing.T) {
	src := `
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) * 2; }
int unrelated(int x) { return x - 5; }
int enclave_f(char *secrets) { return mid(secrets[0]) + unrelated(secrets[0]); }
`
	opts := DefaultOptions()
	store := newMemStore()
	bc := SummaryBuildConfig{Store: store, Fingerprint: "test-fp"}

	buildTable(t, src, opts, bc)
	if store.puts != 3 || store.hits != 0 {
		t.Fatalf("cold build: puts %d hits %d, want 3/0", store.puts, store.hits)
	}

	store.puts, store.hits = 0, 0
	buildTable(t, src, opts, bc)
	if store.puts != 0 || store.hits != 3 {
		t.Fatalf("warm rebuild: puts %d hits %d, want 0/3", store.puts, store.hits)
	}

	// Edit leaf: leaf and its caller mid recompute; unrelated stays warm.
	edited := strings.Replace(src, "return x + 1;", "return x + 2;", 1)
	store.puts, store.hits = 0, 0
	buildTable(t, edited, opts, bc)
	if store.puts != 2 || store.hits != 1 {
		t.Fatalf("after editing leaf: puts %d hits %d, want 2/1", store.puts, store.hits)
	}
}

// TestSummaryStoreCorruptionRecomputes pins that a corrupt persisted
// summary degrades to a recompute, never a panic or a wrong table.
func TestSummaryStoreCorruptionRecomputes(t *testing.T) {
	src := `
int leaf(int x) { return x + 1; }
int enclave_f(char *secrets) { return leaf(secrets[0]); }
`
	opts := DefaultOptions()
	store := newMemStore()
	bc := SummaryBuildConfig{Store: store, Fingerprint: "test-fp"}
	_, table := buildTable(t, src, opts, bc)
	if table.Lookup("leaf").Kind != SummaryPure {
		t.Fatalf("leaf not pure")
	}
	for k := range store.m {
		store.m[k] = []byte{0xFF, 0x00, 0x01}
	}
	m := obs.NewMetrics()
	bc.Obs = m
	_, table = buildTable(t, src, opts, bc)
	if table.Lookup("leaf").Kind != SummaryPure {
		t.Errorf("corrupt store poisoned the table: %+v", table.Lookup("leaf"))
	}
	if m.Counter("summary.cache.undecodable") != 1 {
		t.Errorf("undecodable counter = %d, want 1", m.Counter("summary.cache.undecodable"))
	}
}

// TestSummaryEncodeDecodeRoundtrip pins the persisted representation.
func TestSummaryEncodeDecodeRoundtrip(t *testing.T) {
	opts := DefaultOptions()
	_, table := buildTable(t, summarySrc, opts, SummaryBuildConfig{})
	for _, s := range table.Summaries() {
		payload := encodeSummary(s)
		got, err := decodeSummary(payload)
		if err != nil {
			t.Fatalf("%s: %v", s.Func, err)
		}
		if got.Func != s.Func || got.Kind != s.Kind || got.NumParams != s.NumParams ||
			got.Depth != s.Depth || got.Cost != s.Cost || got.Steps != s.Steps ||
			got.Regions != s.Regions || got.HasAffine != s.HasAffine {
			t.Errorf("%s: roundtrip mismatch: %+v vs %+v", s.Func, got, s)
		}
		if (s.Skeleton == nil) != (got.Skeleton == nil) {
			t.Errorf("%s: skeleton presence changed", s.Func)
		}
	}
}

// FuzzSummaryRoundtrip asserts the persisted-summary decoder never panics
// and that any payload it accepts re-encodes stably. Run via
// `make fuzz-smoke`.
func FuzzSummaryRoundtrip(f *testing.F) {
	opts := DefaultOptions()
	file, err := minic.Parse(summarySrc)
	if err != nil {
		f.Fatal(err)
	}
	table := BuildSummaryTable(context.Background(), file, opts, SummaryBuildConfig{})
	for _, s := range table.Summaries() {
		f.Add(encodeSummary(s))
	}
	f.Add([]byte{})
	f.Add([]byte{summaryMagic, summaryVersion})
	f.Fuzz(func(t *testing.T, payload []byte) {
		s, err := decodeSummary(payload)
		if err != nil {
			return // rejected: fine, as long as it terminated without panic
		}
		re := encodeSummary(s)
		s2, err := decodeSummary(re)
		if err != nil {
			t.Fatalf("re-encode of accepted payload rejected: %v", err)
		}
		if s2.Func != s.Func || s2.Kind != s.Kind || s2.NumParams != s.NumParams {
			t.Fatalf("re-encode not stable: %+v vs %+v", s2, s)
		}
	})
}
