package symexec

// Randomized cross-validation: generate random MiniC programs over integer
// secrets (straight-line arithmetic, nested branches, compound assignment),
// explore them symbolically, and for every completed path check that a
// concrete run under a solver model reproduces the symbolic observations.
// This is the engine's strongest soundness test: any divergence between
// the symbolic semantics and the concrete interpreter fails it.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"privacyscope/internal/interp"
	"privacyscope/internal/minic"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
)

// pgen generates a random program from a deterministic byte stream.
type pgen struct {
	bytes []byte
	off   int
	vars  []string
	depth int
}

func (g *pgen) next() byte {
	if g.off >= len(g.bytes) {
		return 0
	}
	b := g.bytes[g.off]
	g.off++
	return b
}

// Operators chosen to be total (no /, % — trapping needs path-split
// semantics the generator does not model).
var fuzzOps = []string{"+", "-", "*", "^", "&", "|"}
var fuzzCmps = []string{"==", "!=", "<", "<=", ">", ">="}

func (g *pgen) expr(depth int) string {
	switch {
	case depth <= 0 || g.next()%3 == 0:
		switch g.next() % 3 {
		case 0:
			return fmt.Sprintf("%d", int8(g.next()))
		case 1:
			return fmt.Sprintf("secrets[%d]", g.next()%4)
		default:
			if len(g.vars) == 0 {
				return fmt.Sprintf("secrets[%d]", g.next()%4)
			}
			return g.vars[int(g.next())%len(g.vars)]
		}
	default:
		op := fuzzOps[int(g.next())%len(fuzzOps)]
		return "(" + g.expr(depth-1) + " " + op + " " + g.expr(depth-1) + ")"
	}
}

func (g *pgen) cond() string {
	cmp := fuzzCmps[int(g.next())%len(fuzzCmps)]
	return g.expr(1) + " " + cmp + " " + g.expr(1)
}

func (g *pgen) stmts(n, indent int) string {
	var sb strings.Builder
	pad := strings.Repeat("    ", indent)
	for i := 0; i < n; i++ {
		switch g.next() % 5 {
		case 0, 1:
			name := fmt.Sprintf("v%d_%d", indent, len(g.vars))
			fmt.Fprintf(&sb, "%sint %s = %s;\n", pad, name, g.expr(2))
			g.vars = append(g.vars, name)
		case 2:
			if len(g.vars) > 0 {
				v := g.vars[int(g.next())%len(g.vars)]
				op := []string{"=", "+=", "-=", "*="}[g.next()%4]
				fmt.Fprintf(&sb, "%s%s %s %s;\n", pad, v, op, g.expr(2))
			} else {
				fmt.Fprintf(&sb, "%soutput[1] = %s;\n", pad, g.expr(2))
			}
		case 3:
			if g.depth < 3 {
				g.depth++
				outer := len(g.vars)
				fmt.Fprintf(&sb, "%sif (%s) {\n", pad, g.cond())
				sb.WriteString(g.stmts(int(g.next()%2)+1, indent+1))
				g.vars = g.vars[:outer]
				fmt.Fprintf(&sb, "%s} else {\n", pad)
				sb.WriteString(g.stmts(int(g.next()%2)+1, indent+1))
				g.vars = g.vars[:outer]
				fmt.Fprintf(&sb, "%s}\n", pad)
				g.depth--
			}
		default:
			fmt.Fprintf(&sb, "%soutput[%d] = %s;\n", pad, g.next()%2, g.expr(2))
		}
	}
	return sb.String()
}

func (g *pgen) program() string {
	var sb strings.Builder
	sb.WriteString("int f(int *secrets, int *output) {\n")
	sb.WriteString(g.stmts(int(g.next()%4)+3, 1))
	sb.WriteString("    return " + g.expr(2) + ";\n}\n")
	return sb.String()
}

// FuzzFailSoft is the native-fuzzer form of the fail-soft invariant: for
// any generated program and any (tiny) budget, exploration must return a
// degraded-but-valid Result — never an error, never a panic, and a
// truncated Coverage always carries its reason. Run via `make fuzz-smoke`.
func FuzzFailSoft(f *testing.F) {
	f.Add([]byte("seed-one-branchy-program-bytes--"), uint8(2), uint8(50))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, uint8(1), uint8(1))
	f.Add([]byte(strings.Repeat("\xa5", 96)), uint8(8), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, maxPaths, maxSteps uint8) {
		g := &pgen{bytes: raw}
		src := g.program()
		file, err := minic.Parse(src)
		if err != nil {
			t.Fatalf("generated program must parse: %v\n%s", err, src)
		}
		opts := DefaultOptions()
		opts.MaxPaths = int(maxPaths%32) + 1
		opts.MaxSteps = int(maxSteps) + 1
		res, err := New(file, opts).AnalyzeFunction(context.Background(), "f", []ParamSpec{
			{Name: "secrets", Class: ParamSecret},
			{Name: "output", Class: ParamOut},
		})
		if err != nil {
			t.Fatalf("budget exhaustion must degrade, not fail: %v\n%s", err, src)
		}
		cov := res.Coverage
		if cov.Truncated && cov.Reason == TruncNone {
			t.Fatalf("truncated coverage without a reason: %+v\n%s", cov, src)
		}
		if !cov.Truncated && cov.Reason != TruncNone {
			t.Fatalf("untruncated coverage with reason %q\n%s", cov.Reason, src)
		}
		if cov.CompletedPaths != len(res.Paths) {
			t.Fatalf("CompletedPaths %d != len(Paths) %d\n%s", cov.CompletedPaths, len(res.Paths), src)
		}
		if cov.CompletedPaths > opts.MaxPaths {
			t.Fatalf("kept %d paths over budget %d\n%s", cov.CompletedPaths, opts.MaxPaths, src)
		}
	})
}

// TestFuzzCrossValidation generates programs from fixed seeds (so failures
// are reproducible) and cross-validates every explored path.
func TestFuzzCrossValidation(t *testing.T) {
	sv := solver.New()
	validated := 0
	for seed := 0; seed < 120; seed++ {
		// Simple deterministic byte stream per seed.
		raw := make([]byte, 96)
		x := uint64(seed)*2654435761 + 1
		for i := range raw {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			raw[i] = byte(x)
		}
		g := &pgen{bytes: raw}
		src := g.program()
		file, err := minic.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, src)
		}
		opts := DefaultOptions()
		opts.MaxPaths = 256
		engine := New(file, opts)
		res, err := engine.AnalyzeFunction(context.Background(), "f", []ParamSpec{
			{Name: "secrets", Class: ParamSecret},
			{Name: "output", Class: ParamOut},
		})
		if err != nil {
			// Budget exhaustion degrades instead of erroring now, so any
			// error here is a real engine failure.
			t.Fatalf("seed %d: exploration failed: %v\n%s", seed, err, src)
		}
		for pi, p := range res.Paths {
			model, ok := sv.Model(p.PC, res.Builder.Symbols())
			if !ok {
				continue // solver could not concretize; fine
			}
			machine, err := interp.NewMachine(file)
			if err != nil {
				t.Fatal(err)
			}
			secretBuf := interp.NewBuffer("secrets", interp.CellInt, 4)
			for name, s := range res.SecretSymbols {
				idx, ok := indexOf(name, "secrets")
				if !ok {
					continue
				}
				if v, bound := model[s.ID]; bound {
					_ = secretBuf.Store(idx, interp.IntValue(int64(v.AsInt())))
				}
			}
			outBuf := interp.NewBuffer("output", interp.CellInt, 2)
			ret, err := machine.Call("f", []interp.Value{
				interp.PtrValue(interp.Pointer{Obj: secretBuf}),
				interp.PtrValue(interp.Pointer{Obj: outBuf}),
			})
			if err != nil {
				t.Errorf("seed %d path %d: concrete run failed: %v\n%s", seed, pi, err, src)
				continue
			}
			if p.Return != nil {
				want, err := sym.Eval(p.Return, model)
				if err == nil && ret.Int() != int64(want.AsInt()) {
					t.Errorf("seed %d path %d: return %d != symbolic %d\npc: %s\n%s",
						seed, pi, ret.Int(), want.AsInt(), p.PC, src)
				}
			}
			for _, o := range p.Outs {
				idx, ok := indexOf(o.Display, "output")
				if !ok {
					continue
				}
				cell, err := outBuf.Load(idx)
				if err != nil {
					continue
				}
				want, err := sym.Eval(o.Value, model)
				if err == nil && cell.Int() != int64(want.AsInt()) {
					t.Errorf("seed %d path %d: %s = %d != symbolic %d\npc: %s\n%s",
						seed, pi, o.Display, cell.Int(), want.AsInt(), p.PC, src)
				}
			}
			validated++
		}
	}
	if validated < 200 {
		t.Errorf("only %d path validations ran; generator too weak", validated)
	}
}
