package symexec

import (
	"fmt"

	"privacyscope/internal/ir"
	"privacyscope/internal/mem"
	"privacyscope/internal/minic"
	"privacyscope/internal/sym"
)

// mathBuiltins are modeled as uninterpreted-but-foldable applications that
// preserve argument taint.
var mathBuiltins = map[string]bool{
	"sqrt": true, "fabs": true, "abs": true, "exp": true, "log": true,
	"pow": true, "floor": true, "ceil": true,
}

// isIntrinsic reports whether the engine has a native model for the
// function (so statement-position calls must not bypass it).
func isIntrinsic(opts Options, name string) bool {
	if opts.Intrinsics[name] != nil {
		return true
	}
	if mathBuiltins[name] {
		return true
	}
	if _, ok := opts.DecryptFuncs[name]; ok {
		return true
	}
	switch name {
	case "memcpy", "memset", "rand", "sgx_read_rand", "srand", "free", "malloc":
		return true
	}
	return false
}

// noteLifecycle records a call to a configured lifecycle init function on
// the current path, with the shared ocall/init sequence number the
// orderliness detector replays. No-op unless Options.InitFuncs names fn.
func (e *Engine) noteLifecycle(st *state, fn string, pos minic.Pos) {
	if !e.opts.InitFuncs[fn] {
		return
	}
	st.inits = append(st.inits, LifecycleEvent{Func: fn, Pos: pos, Seq: st.evSeq})
	st.evSeq++
	e.obs.Add("symexec.events.lifecycle", 1)
}

// ptrEscape captures everything bound under an OCALL pointer argument's
// region at call time: once the call crosses the enclave boundary those
// cells are untrusted memory. Cell order is deterministic (store iteration
// is sorted by region key).
func (e *Engine) ptrEscape(st *state, arg int, loc mem.Loc) PtrEscape {
	root := mem.Root(loc.R)
	pe := PtrEscape{Arg: arg, Display: e.displayName(root)}
	for _, sub := range st.store.SubRegionsOf(root) {
		v, ok := st.store.Lookup(sub)
		if !ok {
			continue
		}
		sc, isScalar := v.(mem.Scalar)
		if !isScalar {
			continue
		}
		pe.Cells = append(pe.Cells, EscapeCell{Display: e.displayName(sub), Value: sc.E})
	}
	e.obs.Add("symexec.events.ptr_escapes", 1)
	return pe
}

// execCallStmt executes a statement-position user call with full path
// sensitivity: every path through the callee continues the caller.
func (e *Engine) execCallStmt(st *state, fn *ir.Func, v *minic.CallExpr, k cont) error {
	if len(st.frames) >= e.opts.inlineDepth() {
		// Skipping the call under-approximates the program: whatever the
		// callee would have observed or leaked is unexplored, so the
		// exploration is marked truncated — a no-findings run degrades to
		// Inconclusive instead of claiming Secure.
		e.warn(st, "inline depth exceeded at "+fn.Name+"; call skipped")
		e.markTruncated(TruncInlineDepth)
		return k(st, ctlFallthrough)
	}
	args := make([]mem.SVal, len(v.Args))
	for i, a := range v.Args {
		val, _, err := e.eval(st, a)
		if err != nil {
			return err
		}
		args[i] = val
	}
	e.noteLifecycle(st, fn.Name, v.Pos)
	// Statement position discards the result, but a summary still replays
	// the callee's accounting (and a havoc summary its truncation), keeping
	// the two call-resolution modes byte-identical.
	if _, ok := e.applySummary(st, fn, args); ok {
		return k(st, ctlFallthrough)
	}
	fr := e.pushFrame(st, fn)
	for i, p := range fn.Params {
		reg := e.mgr.Var(p.Name+"#"+fmt.Sprint(fr.id), fr.id)
		fr.declare(p.Name, reg, p.Type)
		if i < len(args) {
			st.store.Bind(reg, args[i])
		}
	}
	return e.execBlock(st, fn.Body, func(end *state, c ctl) error {
		end.frames = end.frames[:len(end.frames)-1]
		// The callee's return terminates the callee, not the caller.
		return k(end, ctlFallthrough)
	})
}

// evalCall gives symbolic semantics to function calls: user functions are
// inlined; recognized builtins have native models; OCALL sinks record their
// arguments; decrypt intrinsics re-symbolize their destination as secret.
func (e *Engine) evalCall(st *state, v *minic.CallExpr) (mem.SVal, minic.Type, error) {
	intTy := minic.Type(minic.Basic{Kind: minic.Int})
	e.noteLifecycle(st, v.Fun, v.Pos)

	// Front-end intrinsics (the PRIML adapter's get_secret/declassify)
	// take precedence over every built-in model.
	if intr := e.opts.Intrinsics[v.Fun]; intr != nil {
		args := make([]sym.Expr, 0, len(v.Args))
		for _, a := range v.Args {
			val, _, err := e.eval(st, a)
			if err != nil {
				return nil, nil, err
			}
			args = append(args, scalarOf(val))
		}
		out, err := intr(IntrinsicCall{Fun: v.Fun, Args: args, Pos: v.Pos, PC: st.pc})
		if err != nil {
			return nil, nil, err
		}
		if out == nil {
			out = sym.IntConst{V: 0}
		}
		return mem.Scalar{E: out}, intTy, nil
	}

	if e.opts.OCallFuncs[v.Fun] {
		ev := SinkEvent{Func: v.Fun, Pos: v.Pos, PC: st.pc, Seq: st.evSeq}
		st.evSeq++
		for i, a := range v.Args {
			val, _, err := e.eval(st, a)
			if err != nil {
				return nil, nil, err
			}
			switch sv := val.(type) {
			case mem.Scalar:
				ev.Args = append(ev.Args, sv.E)
			case mem.Loc:
				if e.opts.RecordPtrEscapes {
					ev.PtrArgs = append(ev.PtrArgs, e.ptrEscape(st, i, sv))
				}
			}
		}
		st.ocalls = append(st.ocalls, ev)
		return mem.Scalar{E: sym.IntConst{V: 0}}, intTy, nil
	}

	if dstIdx, isDecrypt := e.opts.DecryptFuncs[v.Fun]; isDecrypt {
		return e.evalDecrypt(st, v, dstIdx)
	}

	if mathBuiltins[v.Fun] {
		args := make([]sym.Expr, 0, len(v.Args))
		for _, a := range v.Args {
			val, _, err := e.eval(st, a)
			if err != nil {
				return nil, nil, err
			}
			args = append(args, scalarOf(val))
		}
		ty := minic.Type(minic.Basic{Kind: minic.Double})
		if v.Fun == "abs" {
			ty = intTy
		}
		return mem.Scalar{E: e.itn.NewCall(v.Fun, args)}, ty, nil
	}

	switch v.Fun {
	case "memcpy":
		return e.evalMemcpy(st, v)
	case "memset":
		return e.evalMemset(st, v)
	case "rand":
		// Fresh in-enclave entropy per call occurrence: unknown to the
		// attacker, but only a probabilistic mask for secrets (§VIII-A).
		return mem.Scalar{E: e.builder.FreshEntropy(fmt.Sprintf("rand@%s", v.Pos))}, intTy, nil
	case "sgx_read_rand":
		// sgx_read_rand(buf, n): fill the destination with fresh
		// entropy cells.
		if len(v.Args) == 2 {
			dstV, _, err := e.eval(st, v.Args[0])
			if err != nil {
				return nil, nil, err
			}
			nV, _, err := e.eval(st, v.Args[1])
			if err != nil {
				return nil, nil, err
			}
			if dst, ok := dstV.(mem.Loc); ok {
				n, concrete := concreteInt(scalarOf(nV))
				if !concrete || n > 4096 {
					n = 1
					st.store.Bind(e.elementOf(dst.R, summaryIndex),
						mem.Scalar{E: e.builder.FreshEntropy(fmt.Sprintf("rand@%s[*]", v.Pos))})
					e.warn(st, "sgx_read_rand with symbolic length summarized")
				} else {
					for i := 0; i < n; i++ {
						st.store.Bind(e.shiftRegion(dst.R, i),
							mem.Scalar{E: e.builder.FreshEntropy(fmt.Sprintf("rand@%s[%d]", v.Pos, i))})
					}
				}
			}
		}
		return mem.Scalar{E: sym.IntConst{V: 0}}, intTy, nil
	case "srand", "free":
		for _, a := range v.Args {
			if _, _, err := e.eval(st, a); err != nil {
				return nil, nil, err
			}
		}
		return mem.Scalar{E: sym.IntConst{V: 0}}, intTy, nil
	case "malloc":
		pointee := e.builder.FreshPublic(fmt.Sprintf("heap@%s", v.Pos))
		blk := e.mgr.SymBlock(pointee, pointee.Name, false)
		e.mapMu.Lock()
		e.rootDisplay[blk.Key()] = pointee.Name
		e.mapMu.Unlock()
		return mem.Loc{R: blk}, minic.Pointer{Elem: minic.Basic{Kind: minic.Int}}, nil
	}

	fn, ok := e.prog.Func(v.Fun)
	if !ok || fn.Body == nil {
		// Unknown external: opaque result. Conservative mode treats it
		// as a fresh secret so unmodeled code cannot launder taint.
		for _, a := range v.Args {
			if _, _, err := e.eval(st, a); err != nil {
				return nil, nil, err
			}
		}
		if e.opts.ConservativeExterns {
			e.warn(st, "call to unmodeled function "+v.Fun+" treated as a fresh secret (conservative mode)")
			name := v.Fun + "@" + v.Pos.String()
			s := e.builder.FreshSecret(name)
			e.mapMu.Lock()
			e.res.SecretSymbols[name] = s
			e.mapMu.Unlock()
			return mem.Scalar{E: s}, intTy, nil
		}
		e.warn(st, "call to unmodeled function "+v.Fun+" returns an unconstrained public value")
		return mem.Scalar{E: e.builder.FreshPublic(v.Fun + "@" + v.Pos.String())}, intTy, nil
	}
	return e.callUser(st, fn, v)
}

// callUser resolves an expression-position call to a defined user function:
// summary application when one applies, inlining otherwise. Argument
// evaluation happens exactly once, before the mode choice, so both modes
// see identical argument effects.
func (e *Engine) callUser(st *state, fn *ir.Func, v *minic.CallExpr) (mem.SVal, minic.Type, error) {
	if len(st.frames) >= e.opts.inlineDepth() {
		// The unconstrained stand-in hides whatever the callee computes or
		// leaks: mark the exploration truncated so a clean run degrades to
		// Inconclusive, never Secure.
		e.warn(st, "inline depth exceeded at "+fn.Name+"; returning unconstrained value")
		e.markTruncated(TruncInlineDepth)
		return mem.Scalar{E: e.builder.FreshPublic(fn.Name + "@depth")}, fn.Return, nil
	}
	args := make([]mem.SVal, len(v.Args))
	for i, a := range v.Args {
		val, _, err := e.eval(st, a)
		if err != nil {
			return nil, nil, err
		}
		args[i] = val
	}
	if ret, ok := e.applySummary(st, fn, args); ok {
		return ret, fn.Return, nil
	}
	return e.inlineCall(st, fn, args)
}

// inlineCall executes a user function inline on already-evaluated arguments
// (callUser evaluates them so summary application and inlining share the
// argument effects). The callee must be loop-free
// in its control effect on the caller: any internal forking is flattened by
// approximating the call result when the callee forks. To keep the engine
// compositional, callees are executed with the same continuation-passing
// machinery; every path through the callee continues the caller.
//
// Because expressions cannot fork (only statements can), a call inside an
// expression with a forking callee is approximated: the callee runs on the
// current state and its first completed path's return value is used, with a
// warning. ML workloads' helpers are branch-free or concretely-branched, so
// this approximation does not trigger on the evaluation suite.
func (e *Engine) inlineCall(st *state, fn *ir.Func, args []mem.SVal) (mem.SVal, minic.Type, error) {
	fr := e.pushFrame(st, fn)
	for i, p := range fn.Params {
		reg := e.mgr.Var(p.Name+"#"+fmt.Sprint(fr.id), fr.id)
		fr.declare(p.Name, reg, p.Type)
		if i < len(args) {
			st.store.Bind(reg, args[i])
		}
	}

	var retVal mem.SVal
	var firstEnd *state
	var forked bool
	paths := 0
	// "First completed path" is only well-defined under depth-first order,
	// so the callee's subtree is pinned to this worker.
	st.seqLock++
	err := e.execBlock(st, fn.Body, func(end *state, c ctl) error {
		paths++
		if paths == 1 {
			if c.kind == ctlReturn && c.ret != nil {
				retVal = mem.Scalar{E: c.ret}
			} else {
				retVal = mem.Scalar{E: sym.IntConst{V: 0}}
			}
			firstEnd = end
			return nil
		}
		forked = true
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if forked {
		e.warn(st, "callee "+fn.Name+" forks; call-expression result approximated by its first path")
	}
	// Adopt the first completed callee path's state — only after the whole
	// callee exploration finished, because sibling forks inside the callee
	// still reference st through their cloned continuations.
	if firstEnd == nil {
		// Every callee path was infeasible: unconstrained result.
		st.seqLock--
		st.frames = st.frames[:len(st.frames)-1]
		return mem.Scalar{E: e.builder.FreshPublic(fn.Name + "@nopath")}, fn.Return, nil
	}
	if firstEnd != st {
		*st = *firstEnd
	}
	st.seqLock--
	// Pop the callee frame.
	st.frames = st.frames[:len(st.frames)-1]
	if retVal == nil {
		retVal = mem.Scalar{E: sym.IntConst{V: 0}}
	}
	return retVal, fn.Return, nil
}

// evalDecrypt models an IPP-style decryption: after the call, the
// destination buffer holds the user's secret plaintext, so its elements are
// re-symbolized as fresh secret symbols (§VI-B: "assigns the symbolic value
// of secret data to decrypted secret data").
func (e *Engine) evalDecrypt(st *state, v *minic.CallExpr, dstIdx int) (mem.SVal, minic.Type, error) {
	intTy := minic.Type(minic.Basic{Kind: minic.Int})
	var dstLoc mem.Loc
	for i, a := range v.Args {
		val, _, err := e.eval(st, a)
		if err != nil {
			return nil, nil, err
		}
		if i == dstIdx {
			loc, ok := val.(mem.Loc)
			if !ok {
				return nil, nil, &minic.Error{Pos: v.Pos, Msg: v.Fun + ": destination is not a pointer"}
			}
			dstLoc = loc
		}
	}
	root := mem.Root(dstLoc.R)
	e.mapMu.Lock()
	e.secretRoots[root.Key()] = true
	e.mapMu.Unlock()
	// Any elements already bound under the destination become fresh
	// secrets too.
	for _, sub := range st.store.SubRegionsOf(root) {
		display := e.displayName(sub)
		s := e.builder.FreshSecret(display)
		st.store.Bind(sub, mem.Scalar{E: s})
		e.mapMu.Lock()
		e.res.SecretSymbols[display] = s
		e.inputSyms[sub.Key()] = mem.Scalar{E: s}
		e.mapMu.Unlock()
	}
	return mem.Scalar{E: sym.IntConst{V: 0}}, intTy, nil
}

func (e *Engine) evalMemcpy(st *state, v *minic.CallExpr) (mem.SVal, minic.Type, error) {
	intTy := minic.Type(minic.Basic{Kind: minic.Int})
	if len(v.Args) != 3 {
		return nil, nil, &minic.Error{Pos: v.Pos, Msg: "memcpy expects 3 args"}
	}
	dstV, dstTy, err := e.eval(st, v.Args[0])
	if err != nil {
		return nil, nil, err
	}
	srcV, _, err := e.eval(st, v.Args[1])
	if err != nil {
		return nil, nil, err
	}
	nV, _, err := e.eval(st, v.Args[2])
	if err != nil {
		return nil, nil, err
	}
	dst, dOK := dstV.(mem.Loc)
	src, sOK := srcV.(mem.Loc)
	if !dOK || !sOK {
		return nil, nil, &minic.Error{Pos: v.Pos, Msg: "memcpy on non-pointer"}
	}
	elemTy, _ := minic.ElemType(dstTy)
	if elemTy == nil {
		elemTy = minic.Basic{Kind: minic.Char}
	}
	n, concrete := concreteInt(scalarOf(nV))
	if !concrete || n > 4096 {
		// Symbolic length: copy the summary slot only.
		val, err := e.load(st, e.elementOf(src.R, summaryIndex), elemTy)
		if err != nil {
			return nil, nil, err
		}
		st.store.Bind(e.elementOf(dst.R, summaryIndex), val)
		e.warn(st, "memcpy with symbolic length summarized")
		return mem.Scalar{E: sym.IntConst{V: 0}}, intTy, nil
	}
	for i := 0; i < n; i++ {
		val, err := e.load(st, e.shiftRegion(src.R, i), elemTy)
		if err != nil {
			return nil, nil, err
		}
		st.store.Bind(e.shiftRegion(dst.R, i), val)
	}
	return mem.Scalar{E: sym.IntConst{V: 0}}, intTy, nil
}

func (e *Engine) evalMemset(st *state, v *minic.CallExpr) (mem.SVal, minic.Type, error) {
	intTy := minic.Type(minic.Basic{Kind: minic.Int})
	if len(v.Args) != 3 {
		return nil, nil, &minic.Error{Pos: v.Pos, Msg: "memset expects 3 args"}
	}
	dstV, _, err := e.eval(st, v.Args[0])
	if err != nil {
		return nil, nil, err
	}
	fillV, _, err := e.eval(st, v.Args[1])
	if err != nil {
		return nil, nil, err
	}
	nV, _, err := e.eval(st, v.Args[2])
	if err != nil {
		return nil, nil, err
	}
	dst, ok := dstV.(mem.Loc)
	if !ok {
		return nil, nil, &minic.Error{Pos: v.Pos, Msg: "memset on non-pointer"}
	}
	n, concrete := concreteInt(scalarOf(nV))
	if !concrete || n > 4096 {
		st.store.Bind(e.elementOf(dst.R, summaryIndex), fillV)
		e.warn(st, "memset with symbolic length summarized")
		return mem.Scalar{E: sym.IntConst{V: 0}}, intTy, nil
	}
	for i := 0; i < n; i++ {
		st.store.Bind(e.shiftRegion(dst.R, i), fillV)
	}
	return mem.Scalar{E: sym.IntConst{V: 0}}, intTy, nil
}
