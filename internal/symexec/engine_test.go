package symexec

import (
	"context"
	"strings"
	"testing"
	"time"

	"privacyscope/internal/minic"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/taint"
)

const listing1 = `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`

func listing1Params() []ParamSpec {
	return []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}
}

func analyzeSrc(t *testing.T, src, fn string, params []ParamSpec, opts Options) *Result {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(file, opts).AnalyzeFunction(context.Background(), fn, params)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTableIVExploration reproduces Table IV: the symbolic exploration of
// Listing 1 forks into two states with opposite constraints on secrets[1],
// and the store carries output[0] → secrets[0] + 101 on both paths.
func TestTableIVExploration(t *testing.T) {
	opts := DefaultOptions()
	opts.TrackTrace = true
	res := analyzeSrc(t, listing1, "enclave_process_data", listing1Params(), opts)

	if len(res.Paths) != 2 {
		t.Fatalf("paths = %d, want 2 (states D and E)", len(res.Paths))
	}

	// Path conditions are the two opposite constraints of Table IV.
	pcs := []string{res.Paths[0].PC.String(), res.Paths[1].PC.String()}
	joined := strings.Join(pcs, " / ")
	if !strings.Contains(joined, "secrets[1] == 0") || !strings.Contains(joined, "secrets[1] != 0") {
		t.Errorf("path conditions = %v", pcs)
	}

	// Returns are 0 and 1 respectively.
	rets := map[string]string{}
	for _, p := range res.Paths {
		rets[p.PC.String()] = p.Return.String()
	}
	for pc, ret := range rets {
		if strings.Contains(pc, "== 0") && ret != "0" {
			t.Errorf("then-path return = %s, want 0", ret)
		}
		if strings.Contains(pc, "!= 0") && ret != "1" {
			t.Errorf("else-path return = %s, want 1", ret)
		}
	}

	// Both paths observe output[0] = secrets[0] + 101.
	for _, p := range res.Paths {
		if len(p.Outs) != 1 {
			t.Fatalf("outs = %+v", p.Outs)
		}
		o := p.Outs[0]
		if o.Param != "output" || o.Display != "output[0]" {
			t.Errorf("out write = %+v", o)
		}
		if o.Value.String() != "(secrets[0] + 101)" {
			t.Errorf("out value = %s, want (secrets[0] + 101)", o.Value)
		}
		// Taint of the out value is the single tag of secrets[0].
		s0 := res.SecretSymbols["secrets[0]"]
		if s0 == nil {
			t.Fatal("secrets[0] symbol missing")
		}
		if !sym.TaintOf(o.Value).Equal(taint.Single(s0.Tag)) {
			t.Errorf("out taint = %v", sym.TaintOf(o.Value))
		}
		// π is tainted by the single tag of secrets[1].
		s1 := res.SecretSymbols["secrets[1]"]
		if s1 == nil {
			t.Fatal("secrets[1] symbol missing")
		}
		if !p.PC.Taint().Equal(taint.Single(s1.Tag)) {
			t.Errorf("π taint = %v", p.PC.Taint())
		}
	}

	// The exploration visited at least the five states A–E of Table IV.
	if res.States < 5 {
		t.Errorf("states = %d, want ≥ 5", res.States)
	}
	if res.Trace == nil || res.Trace.Len() < 5 {
		t.Fatalf("trace rows = %v", res.Trace)
	}
	rendered := res.Trace.Render()
	for _, want := range []string{"state A", "π", "secrets", "output"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("trace missing %q:\n%s", want, rendered)
		}
	}
	// Regions: at least secrets block, output block, their elements and
	// the locals (Table IV creates reg0..reg3).
	if res.Regions < 4 {
		t.Errorf("regions = %d, want ≥ 4", res.Regions)
	}
}

func TestScalarSecretParam(t *testing.T) {
	src := `int f(int secret_x, int pub_y) { return secret_x * 2 + pub_y; }`
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "secret_x", Class: ParamSecret},
		{Name: "pub_y", Class: ParamPublic},
	}, DefaultOptions())
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	ret := res.Paths[0].Return
	sx := res.SecretSymbols["secret_x"]
	if sx == nil {
		t.Fatal("secret_x symbol missing")
	}
	if !sym.TaintOf(ret).Equal(taint.Single(sx.Tag)) {
		t.Errorf("return taint = %v", sym.TaintOf(ret))
	}
	// And the affine inversion exists.
	if _, ok := sym.InvertFor(ret, sx.ID); !ok {
		t.Error("return must be affine in secret_x")
	}
}

func TestConcreteLoopRunsToCompletion(t *testing.T) {
	src := `
#define N 6
int f(int *secrets, int *output) {
    int total = 0;
    for (int i = 0; i < N; i++) total += secrets[i];
    output[0] = total;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d, want 1 (no symbolic forks)", len(res.Paths))
	}
	out := res.Paths[0].Outs
	if len(out) != 1 {
		t.Fatalf("outs = %+v", out)
	}
	// Sum over six distinct secrets is ⊤ — masked.
	if !sym.TaintOf(out[0].Value).IsTop() {
		t.Errorf("taint = %v, want ⊤", sym.TaintOf(out[0].Value))
	}
	if len(res.SecretSymbols) != 6 {
		t.Errorf("secret symbols = %d, want 6", len(res.SecretSymbols))
	}
}

func TestSymbolicLoopForksUpToBound(t *testing.T) {
	src := `
int f(int n, int *output) {
    int i = 0;
    while (i < n) { i++; }
    output[0] = i;
    return 0;
}
`
	opts := DefaultOptions()
	opts.LoopBound = 3
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "n", Class: ParamPublic},
		{Name: "output", Class: ParamOut},
	}, opts)
	// Exits after 0, 1, 2, 3 iterations; the bound-cut path is marked
	// incomplete.
	if len(res.Paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(res.Paths))
	}
	var incomplete int
	for _, p := range res.Paths {
		if p.Incomplete {
			incomplete++
		}
	}
	if incomplete != 1 {
		t.Errorf("incomplete paths = %d, want 1", incomplete)
	}
	if len(res.Warnings) == 0 {
		t.Error("expected a loop-bound warning")
	}
}

func TestStructFlow(t *testing.T) {
	src := `
struct Model { float w; float b; };
int train(float *secrets, float *output) {
    struct Model m;
    m.w = secrets[0] * 2.0;
    m.b = secrets[1];
    output[0] = m.w;
    output[1] = m.b + m.w;
    return 0;
}
`
	res := analyzeSrc(t, src, "train", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	outs := map[string]sym.Expr{}
	for _, o := range res.Paths[0].Outs {
		outs[o.Display] = o.Value
	}
	if !sym.TaintOf(outs["output[0]"]).IsSingle() {
		t.Errorf("output[0] taint = %v, want single", sym.TaintOf(outs["output[0]"]))
	}
	if !sym.TaintOf(outs["output[1]"]).IsTop() {
		t.Errorf("output[1] taint = %v, want ⊤", sym.TaintOf(outs["output[1]"]))
	}
}

func TestInlineCall(t *testing.T) {
	src := `
float scale(float x) { return x * 3.0; }
int f(float *secrets, float *output) {
    output[0] = scale(secrets[0]);
    return 0;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	o := res.Paths[0].Outs[0]
	if !sym.TaintOf(o.Value).IsSingle() {
		t.Errorf("taint through call = %v", sym.TaintOf(o.Value))
	}
	if o.Value.String() != "(secrets[0] * 3)" {
		t.Errorf("value = %s", o.Value)
	}
}

func TestMathBuiltinPreservesTaint(t *testing.T) {
	src := `
int f(float *secrets, float *output) {
    output[0] = sqrt(secrets[0]);
    return 0;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	o := res.Paths[0].Outs[0]
	if !sym.TaintOf(o.Value).IsSingle() {
		t.Errorf("sqrt taint = %v, want single", sym.TaintOf(o.Value))
	}
}

func TestOcallSink(t *testing.T) {
	src := `
int f(int *secrets) {
    printf("%d", secrets[0]);
    return 0;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{{Name: "secrets", Class: ParamSecret}}, DefaultOptions())
	oc := res.Paths[0].Ocalls
	if len(oc) != 1 || oc[0].Func != "printf" {
		t.Fatalf("ocalls = %+v", oc)
	}
	var tainted bool
	for _, a := range oc[0].Args {
		if sym.TaintOf(a).IsSingle() {
			tainted = true
		}
	}
	if !tainted {
		t.Error("printf argument must carry the secret's taint")
	}
}

func TestDecryptResymbolization(t *testing.T) {
	src := `
int f(char *ciphertext, char *output) {
    char plain[4];
    sgx_rijndael128GCM_decrypt(plain, ciphertext, 4);
    output[0] = plain[0];
    return 0;
}
`
	// ciphertext is NOT marked secret — it is opaque encrypted bytes —
	// yet the decrypted plaintext must be treated as secret.
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "ciphertext", Class: ParamPublic},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	o := res.Paths[0].Outs[0]
	if !sym.TaintOf(o.Value).IsSingle() {
		t.Errorf("decrypted data taint = %v, want single secret", sym.TaintOf(o.Value))
	}
}

func TestMemcpyPropagatesTaint(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int tmp[3];
    memcpy(tmp, secrets, 3);
    output[0] = tmp[1];
    return 0;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	o := res.Paths[0].Outs[0]
	if !sym.TaintOf(o.Value).IsSingle() {
		t.Errorf("memcpy'd taint = %v", sym.TaintOf(o.Value))
	}
	if o.Value.String() != "secrets[1]" {
		t.Errorf("value = %s, want secrets[1]", o.Value)
	}
}

func TestMemsetClearsToConstant(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int tmp[2];
    tmp[0] = secrets[0];
    memset(tmp, 0, 2);
    output[0] = tmp[0];
    return 0;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	o := res.Paths[0].Outs[0]
	if !sym.TaintOf(o.Value).IsBottom() {
		t.Errorf("after memset taint = %v, want ⊥", sym.TaintOf(o.Value))
	}
}

func TestSymbolicIndexSummarized(t *testing.T) {
	src := `
int f(int *secrets, int idx, int *output) {
    output[0] = secrets[idx];
    return 0;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "idx", Class: ParamPublic},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	o := res.Paths[0].Outs[0]
	// A summarized read still carries secret taint — no false negative.
	if sym.TaintOf(o.Value).IsBottom() {
		t.Error("summarized secret read lost its taint")
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "symbolic array index") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v", res.Warnings)
	}
}

func TestInfeasiblePathPruned(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int x = 5;
    if (x > 10) { output[0] = secrets[0]; }
    else { output[0] = 0; }
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d, want 1 (concrete condition)", len(res.Paths))
	}
	if !sym.TaintOf(res.Paths[0].Outs[0].Value).IsBottom() {
		t.Error("dead branch leaked taint")
	}
}

func listing1ParamsInt() []ParamSpec {
	return []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}
}

func TestSolverPruningOfSymbolicBranch(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int a = secrets[0];
    if (a > 0) {
        if (a < 0) { output[0] = a; }
        else { output[0] = 0; }
    }
    else { output[0] = 0; }
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	// a>0 ∧ a<0 is pruned: 2 paths, none leaking.
	if len(res.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(res.Paths))
	}
	for _, p := range res.Paths {
		for _, o := range p.Outs {
			if !sym.TaintOf(o.Value).IsBottom() {
				t.Errorf("leak on pc %s", p.PC)
			}
		}
	}

	// Ablation: with pruning off, the contradictory path is explored.
	opts := DefaultOptions()
	opts.PruneInfeasible = false
	res2 := analyzeSrc(t, src, "f", listing1ParamsInt(), opts)
	if len(res2.Paths) != 3 {
		t.Errorf("unpruned paths = %d, want 3", len(res2.Paths))
	}
}

func TestGlobalVariables(t *testing.T) {
	src := `
int bias = 10;
int f(int *secrets, int *output) {
    output[0] = secrets[0] + bias;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	o := res.Paths[0].Outs[0]
	if !sym.TaintOf(o.Value).IsSingle() {
		t.Errorf("taint = %v", sym.TaintOf(o.Value))
	}
}

func TestInOutParam(t *testing.T) {
	src := `
int f(int *buf) {
    buf[0] = buf[0] * 2;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{{Name: "buf", Class: ParamInOut}}, DefaultOptions())
	o := res.Paths[0].Outs
	if len(o) != 1 {
		t.Fatalf("outs = %+v", o)
	}
	if !sym.TaintOf(o[0].Value).IsSingle() {
		t.Errorf("in/out taint = %v", sym.TaintOf(o[0].Value))
	}
}

func TestPointerArithmeticAndDeref(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int *p = secrets + 1;
    output[0] = *p;
    output[1] = p[1];
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	outs := map[string]string{}
	for _, o := range res.Paths[0].Outs {
		outs[o.Display] = o.Value.String()
	}
	if outs["output[0]"] != "secrets[1]" {
		t.Errorf("output[0] = %s, want secrets[1]", outs["output[0]"])
	}
	if outs["output[1]"] != "secrets[2]" {
		t.Errorf("output[1] = %s, want secrets[2]", outs["output[1]"])
	}
}

func TestReturnVoidPath(t *testing.T) {
	src := `
void f(int *secrets, int *output) {
    output[0] = 1;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	if res.Paths[0].Return != nil {
		t.Errorf("void return = %v", res.Paths[0].Return)
	}
}

func TestUnknownEntryFunction(t *testing.T) {
	file := minic.MustParse("int f(void) { return 0; }")
	if _, err := New(file, DefaultOptions()).AnalyzeFunction(context.Background(), "nope", nil); err == nil {
		t.Error("expected error for unknown function")
	}
}

func TestPathBudget(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int acc = 0;
    if (secrets[0] > 0) acc++; else acc--;
    if (secrets[1] > 0) acc++; else acc--;
    if (secrets[2] > 0) acc++; else acc--;
    if (secrets[3] > 0) acc++; else acc--;
    output[0] = 7;
    return acc;
}
`
	opts := DefaultOptions()
	opts.MaxPaths = 8
	file := minic.MustParse(src)
	res, err := New(file, opts).AnalyzeFunction(context.Background(), "f", listing1ParamsInt())
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not fail: %v", err)
	}
	if len(res.Paths) != 8 {
		t.Errorf("want the 8 in-budget paths kept, got %d", len(res.Paths))
	}
	if !res.Coverage.Truncated || res.Coverage.Reason != TruncPathBudget {
		t.Errorf("want Coverage{Truncated, path-budget}, got %+v", res.Coverage)
	}
	if res.Coverage.CompletedPaths != 8 {
		t.Errorf("want CompletedPaths=8, got %d", res.Coverage.CompletedPaths)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "truncated") {
			found = true
		}
	}
	if !found {
		t.Errorf("want a truncation warning, got %q", res.Warnings)
	}
}

func TestStepBudgetTruncates(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int i = 0;
    int acc = 0;
    while (i < 100000) { acc = acc + i; i++; }
    output[0] = 7;
    return acc;
}
`
	opts := DefaultOptions()
	opts.MaxSteps = 200
	file := minic.MustParse(src)
	res, err := New(file, opts).AnalyzeFunction(context.Background(), "f", listing1ParamsInt())
	if err != nil {
		t.Fatalf("step exhaustion must degrade, not fail: %v", err)
	}
	if !res.Coverage.Truncated || res.Coverage.Reason != TruncStepBudget {
		t.Errorf("want Coverage{Truncated, step-budget}, got %+v", res.Coverage)
	}
	if res.Coverage.StepsUsed == 0 {
		t.Error("want StepsUsed recorded")
	}
}

func TestCancelledContextTruncates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the engine must stop within one check interval
	src := `
int f(int *secrets, int *output) {
    int i = 0;
    int acc = 0;
    while (i < 100000) { acc = acc + i; i++; }
    output[0] = 7;
    return acc;
}
`
	file := minic.MustParse(src)
	res, err := New(file, DefaultOptions()).AnalyzeFunction(ctx, "f", listing1ParamsInt())
	if err != nil {
		t.Fatalf("cancellation must degrade, not fail: %v", err)
	}
	if !res.Coverage.Truncated || res.Coverage.Reason != TruncCancelled {
		t.Errorf("want Coverage{Truncated, cancelled}, got %+v", res.Coverage)
	}
	if res.Coverage.StepsUsed > ctxCheckInterval {
		t.Errorf("pre-cancelled ctx must stop within one check interval (%d steps), used %d",
			ctxCheckInterval, res.Coverage.StepsUsed)
	}
}

func TestDeadlineTruncates(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // guarantee expiry before the engine starts
	src := `
int f(int *secrets, int *output) {
    int i = 0;
    while (i < 100000) { i++; }
    output[0] = 7;
    return 0;
}
`
	file := minic.MustParse(src)
	res, err := New(file, DefaultOptions()).AnalyzeFunction(ctx, "f", listing1ParamsInt())
	if err != nil {
		t.Fatalf("deadline expiry must degrade, not fail: %v", err)
	}
	if !res.Coverage.Truncated || res.Coverage.Reason != TruncDeadline {
		t.Errorf("want Coverage{Truncated, deadline}, got %+v", res.Coverage)
	}
}

func TestTernarySymbolicKeepsTaint(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    output[0] = secrets[0] > 0 ? 1 : 0;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	o := res.Paths[0].Outs[0]
	if sym.TaintOf(o.Value).IsBottom() {
		t.Error("ternary on secret must keep taint")
	}
}

func TestWitnessModelFromPath(t *testing.T) {
	// The solver can produce a model satisfying a path condition, which
	// drives the concrete replay.
	res := analyzeSrc(t, listing1, "enclave_process_data", listing1Params(), DefaultOptions())
	for _, p := range res.Paths {
		model, ok := newTestSolver().Model(p.PC, nil)
		if !ok {
			t.Fatalf("no model for %s", p.PC)
		}
		for _, c := range p.PC.Conjuncts() {
			v, err := sym.Eval(c, model)
			if err != nil || v.IsZero() {
				t.Errorf("model does not satisfy %s", c)
			}
		}
	}
}

func newTestSolver() *solver.Solver { return solver.New() }
