// Package symexec implements path-sensitive symbolic execution for MiniC
// with the region-based memory model of §VI-B. It is the engine underneath
// the PrivacyScope checker: it explores the exploded state graph
// (stmt, env, σ, π), forking at branches and recording everything an
// observer outside the enclave can see — [out]-parameter writes, return
// values, and OCALL arguments — together with the path condition under
// which each observation happens.
package symexec

import (
	"privacyscope/internal/mem"
	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
)

// ParamClass classifies an entry-point parameter, mirroring EDL attributes.
type ParamClass int

// Parameter classes.
const (
	// ParamPublic is a low input: attacker-known.
	ParamPublic ParamClass = iota + 1
	// ParamSecret is an [in] parameter carrying user private data; every
	// element read from it becomes a distinct secret symbol.
	ParamSecret
	// ParamOut is an [out] parameter: whatever the enclave writes there
	// is observable by the untrusted host.
	ParamOut
	// ParamInOut is both: secret on entry, observable on exit.
	ParamInOut
)

// String names the class in EDL notation.
func (c ParamClass) String() string {
	switch c {
	case ParamPublic:
		return "public"
	case ParamSecret:
		return "[in]"
	case ParamOut:
		return "[out]"
	case ParamInOut:
		return "[in,out]"
	}
	return "?"
}

// ParamSpec assigns a class to one entry-point parameter by name.
type ParamSpec struct {
	Name  string
	Class ParamClass
}

// Options configures the engine.
type Options struct {
	// LoopBound is the maximum number of times a loop with a *symbolic*
	// condition is unrolled per path (concrete-condition loops run to
	// completion under MaxSteps). 0 means DefaultLoopBound.
	LoopBound int
	// MaxPaths bounds the number of completed paths. 0 means
	// DefaultMaxPaths.
	MaxPaths int
	// MaxSteps bounds total statement evaluations. 0 means
	// DefaultMaxSteps.
	MaxSteps int
	// InlineDepth bounds call inlining. 0 means DefaultInlineDepth.
	InlineDepth int
	// PruneInfeasible uses the solver to drop unsatisfiable branches.
	PruneInfeasible bool
	// NoIntern disables the hash-consing arena (on by default): with
	// interning, structurally equal expressions the engine builds are one
	// canonical node, path conditions are canonicalized at fork time, and
	// the solver keys its feasibility memo and per-atom analysis on node
	// identity. Results are byte-identical either way (the intern-smoke
	// differential gate pins this); the knob exists for debugging and for
	// the differential oracle itself.
	NoIntern bool
	// TrackTrace records Table-IV-style state snapshots.
	TrackTrace bool
	// DecryptFuncs lists functions whose destination buffer is
	// re-symbolized as fresh secret data (the IPP decryption list of
	// §VI-B). Keys are function names; the value is the 0-based argument
	// index of the destination pointer.
	DecryptFuncs map[string]int
	// OCallFuncs lists functions whose arguments escape the enclave
	// (OCALL sinks). Keys are function names.
	OCallFuncs map[string]bool
	// ConservativeExterns makes calls to unmodeled external functions
	// return fresh *secret* symbols instead of unconstrained public
	// values. Off by default (it manufactures leak reports from any
	// extern result reaching a sink), but available for high-assurance
	// audits where unmodeled code must not silently launder taint.
	ConservativeExterns bool
	// Intrinsics gives front ends custom call models keyed by function
	// name, dispatched before every built-in model. The PRIML adapter
	// registers its get_secret/declassify semantics here, so declassify
	// checking runs inside the shared engine instead of a second
	// interpreter.
	Intrinsics map[string]IntrinsicFunc
	// NoteHook receives ir.NoteOp payloads with a read-only view of the
	// current state. Notes execute at zero cost (no step, no snapshot);
	// the PRIML adapter uses them to emit Table II/III trace rows.
	// Setting a NoteHook forces sequential exploration.
	NoteHook func(view StateView, data any)
	// PathWorkers sets the number of goroutines exploring the path
	// frontier of one entry point. Values <= 1 mean sequential
	// exploration. Findings and result ordering are deterministic and
	// identical to the sequential order; features that depend on strict
	// sequential path order (TrackTrace, NoteHook, decrypt intrinsics)
	// force workers back to 1 for that entry point.
	PathWorkers int
	// ZeroDefaultVars makes reads of never-written scalar variables
	// evaluate to the integer 0 instead of conjuring fresh symbolic
	// inputs, without binding the zero into the store (PRIML's
	// default-zero store semantics, §V-B).
	ZeroDefaultVars bool
	// Obs receives engine telemetry (symexec.* counters, path-depth
	// distributions). Nil means the no-op observer: instrumentation stays
	// in place but costs nothing. See docs/OBSERVABILITY.md.
	Obs obs.Observer
	// Summaries resolves calls through SummaryTable instead of inlining
	// where a summary applies. Inline mode remains the differential oracle:
	// with identical inputs the two modes produce byte-identical results.
	// Ignored unless SummaryTable is also set; TrackTrace or NoteHook force
	// inline mode (they observe callee-body execution).
	Summaries bool
	// SummaryTable is the per-function summary map built by
	// BuildSummaryTable. Read-only; safe to share across engines.
	SummaryTable *SummaryTable
	// SummaryBudget bounds the steps one scratch summary run may spend
	// before the callee is classified havoc. 0 means DefaultSummaryBudget.
	SummaryBudget int
	// RecordPtrEscapes records, for every OCALL pointer argument, the
	// values bound under the pointed-to region at call time
	// (SinkEvent.PtrArgs). The ocall-pointer and orderliness detector
	// packs consume them; off by default so the scalar-only sink model —
	// and its cost — is unchanged. Forces inline call resolution when
	// summaries are enabled (summaries replay effects, not events).
	RecordPtrEscapes bool
	// RecordSecretAccess records secret-tainted branch conditions at fork
	// points (PathResult.SecretBranches) and secret-tainted symbolic array
	// indices (PathResult.SecretAccesses) for the access-pattern detector
	// pack. Off by default; forces inline mode like RecordPtrEscapes.
	RecordSecretAccess bool
	// InitFuncs names lifecycle init/gate functions; every call to one is
	// recorded per path (PathResult.Inits) with its sequence number
	// relative to the path's OCALLs, so the orderliness pack can replay
	// the entry order. Nil disables recording.
	InitFuncs map[string]bool
}

// Defaults.
const (
	DefaultLoopBound   = 8
	DefaultMaxPaths    = 4096
	DefaultMaxSteps    = 2_000_000
	DefaultInlineDepth = 16
	// DefaultSummaryBudget bounds one scratch summary run's steps.
	DefaultSummaryBudget = 50_000
	// TraceCap bounds recorded snapshots.
	TraceCap = 512
)

// DefaultOptions returns the standard engine configuration.
func DefaultOptions() Options {
	return Options{
		PruneInfeasible: true,
		DecryptFuncs:    map[string]int{"sgx_rijndael128GCM_decrypt": 0},
		OCallFuncs:      map[string]bool{"printf": true, "ocall_print": true},
	}
}

func (o Options) loopBound() int {
	if o.LoopBound <= 0 {
		return DefaultLoopBound
	}
	return o.LoopBound
}

func (o Options) maxPaths() int {
	if o.MaxPaths <= 0 {
		return DefaultMaxPaths
	}
	return o.MaxPaths
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return DefaultMaxSteps
	}
	return o.MaxSteps
}

func (o Options) inlineDepth() int {
	if o.InlineDepth <= 0 {
		return DefaultInlineDepth
	}
	return o.InlineDepth
}

func (o Options) summaryBudget() int {
	if o.SummaryBudget <= 0 {
		return DefaultSummaryBudget
	}
	return o.SummaryBudget
}

// OutWrite is one observable write to an [out] parameter element.
type OutWrite struct {
	// Param is the parameter name, Region the written element.
	Param  string
	Region mem.Region
	// Display is the element in source notation, e.g. "output[0]".
	Display string
	// Value is the symbolic value visible to the host after the ECALL.
	Value sym.Expr
}

// SinkEvent is one OCALL whose arguments escape the enclave mid-path.
type SinkEvent struct {
	Func string
	Pos  minic.Pos
	Args []sym.Expr
	PC   *solver.PathCondition
	// Seq orders this OCALL against the path's lifecycle events (shared
	// per-path counter; see PathResult.Inits).
	Seq int
	// PtrArgs lists pointer arguments and the values reachable through
	// them at call time (only when Options.RecordPtrEscapes).
	PtrArgs []PtrEscape
}

// PtrEscape is one OCALL pointer argument: everything bound under the
// pointed-to region escapes to untrusted memory when the call crosses the
// enclave boundary.
type PtrEscape struct {
	// Arg is the 0-based argument index.
	Arg int
	// Display names the pointed-to region root in source notation.
	Display string
	// Cells are the bound scalar elements, sorted by display name.
	Cells []EscapeCell
}

// EscapeCell is one scalar value reachable through an escaping pointer.
type EscapeCell struct {
	Display string
	Value   sym.Expr
}

// LifecycleEvent is one call to an Options.InitFuncs function on a path.
type LifecycleEvent struct {
	Func string
	Pos  minic.Pos
	// Seq orders the call against the path's OCALLs (shared counter).
	Seq int
}

// BranchEvent is one fork on a secret-tainted condition (recorded under
// Options.RecordSecretAccess). Both forked successors inherit the event:
// the branch is observable on either outcome.
type BranchEvent struct {
	Pos  minic.Pos
	Cond sym.Expr
}

// AccessEvent is one memory access through a secret-tainted symbolic index
// (recorded under Options.RecordSecretAccess).
type AccessEvent struct {
	Pos minic.Pos
	// Display names the accessed region in source notation ("table[*]").
	Display string
	// Index is the tainted index expression.
	Index sym.Expr
}

// PathResult is the observable outcome of one completed execution path.
type PathResult struct {
	// PC is the full path condition.
	PC *solver.PathCondition
	// Return is the function's return value (nil for void paths).
	Return sym.Expr
	// ReturnPos is the source position of the return statement.
	ReturnPos minic.Pos
	// Outs lists the [out]-parameter writes visible at path end.
	Outs []OutWrite
	// Ocalls lists mid-path OCALL observations.
	Ocalls []SinkEvent
	// Incomplete is true when the path was cut by the loop bound or the
	// step budget; findings remain sound but may be incomplete.
	Incomplete bool
	// Cost counts statements executed along the path — the abstract
	// execution-time model behind the timing-channel extension the paper
	// sketches in §VIII-A ("simulate the execution time for program
	// paths and detect if execution time depends on secret").
	Cost int
	// Inits lists lifecycle init-function calls in execution order (only
	// when Options.InitFuncs is set).
	Inits []LifecycleEvent
	// SecretBranches lists forks on secret-tainted conditions (only when
	// Options.RecordSecretAccess).
	SecretBranches []BranchEvent
	// SecretAccesses lists memory accesses through secret-tainted indices
	// (only when Options.RecordSecretAccess).
	SecretAccesses []AccessEvent
	// key is the fork-choice sequence that produced this path; results
	// sort by it so parallel exploration reproduces the sequential order.
	key []byte
}

// Result aggregates the exploration of one entry function.
type Result struct {
	// Function is the analyzed entry point.
	Function string
	// Paths are the completed execution paths.
	Paths []*PathResult
	// Builder owns all symbols minted during the run.
	Builder *sym.Builder
	// SecretSymbols maps display names (e.g. "secrets[0]") to symbols.
	SecretSymbols map[string]*sym.Symbol
	// Trace is the Table-IV-style exploration snapshot log (nil unless
	// TrackTrace).
	Trace *Trace
	// TraceTruncated counts state snapshots dropped past TraceCap; when
	// non-zero, Trace.Render appends an "… (N rows omitted)" footer.
	TraceTruncated int
	// States counts exploded states (trace rows would show them).
	States int
	// Regions counts distinct memory regions created.
	Regions int
	// Coverage records how much of the path space the exploration visited
	// and why it stopped, when it stopped early. Budget exhaustion,
	// deadlines and cancellation truncate the exploration instead of
	// failing it: Paths holds everything completed before the cut.
	Coverage Coverage
	// Warnings lists soft diagnostics (loop bounds hit, budget cuts).
	Warnings []string
}

// SecretSymbolByTag finds the secret symbol with the given taint tag.
func (r *Result) SecretSymbolByTag(tag int) *sym.Symbol {
	for _, s := range r.SecretSymbols {
		if int(s.Tag) == tag {
			return s
		}
	}
	return nil
}
