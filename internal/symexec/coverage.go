package symexec

import "errors"

// TruncReason says why an exploration stopped before exhausting the path
// space. The empty reason means the exploration ran to completion.
type TruncReason string

// Truncation reasons.
const (
	// TruncNone: the exploration completed normally.
	TruncNone TruncReason = ""
	// TruncPathBudget: MaxPaths completed paths were collected and further
	// paths remained.
	TruncPathBudget TruncReason = "path-budget"
	// TruncStepBudget: MaxSteps statement evaluations were spent.
	TruncStepBudget TruncReason = "step-budget"
	// TruncDeadline: the context's deadline expired mid-exploration.
	TruncDeadline TruncReason = "deadline"
	// TruncCancelled: the context was cancelled mid-exploration.
	TruncCancelled TruncReason = "cancelled"
	// TruncInlineDepth: a call chain exceeded InlineDepth, so a callee was
	// skipped (statement position) or returned unconstrained (expression
	// position). The exploration continued, but its observations
	// under-approximate the program: a no-findings run is Inconclusive,
	// not Secure.
	TruncInlineDepth TruncReason = "inline-depth"
	// TruncSummaryHavoc: a call site was resolved by a havoc summary
	// (recursive or over-budget callee), replacing the callee's effects
	// with an unconstrained result. Same soundness consequence as
	// TruncInlineDepth.
	TruncSummaryHavoc TruncReason = "summary-havoc"
)

// Coverage summarizes how much of the path space an exploration visited.
// A truncated exploration still yields every path completed so far — the
// checker downgrades its verdict rather than discarding the work — so
// Coverage is the record consumers need to interpret a partial result.
type Coverage struct {
	// CompletedPaths counts paths explored end to end.
	CompletedPaths int `json:"completedPaths"`
	// IncompletePaths counts completed paths that were internally cut by
	// the loop bound (sound but under-approximate within the path).
	IncompletePaths int `json:"incompletePaths,omitempty"`
	// PrunedPaths counts branches dropped as provably infeasible.
	PrunedPaths int `json:"prunedPaths,omitempty"`
	// StepsUsed counts statement evaluations spent.
	StepsUsed int `json:"stepsUsed"`
	// Truncated is true when the exploration stopped early; Reason says
	// why. A truncated run must never be reported as exhaustive.
	Truncated bool        `json:"truncated"`
	Reason    TruncReason `json:"reason,omitempty"`
}

// Partial reports whether any part of the path space may have been missed:
// either the exploration was cut short, or individual paths were cut by the
// loop bound.
func (c Coverage) Partial() bool { return c.Truncated }

// errStopExploration is the internal sentinel that unwinds the
// continuation-passing exploration when a budget, deadline or cancellation
// fires. AnalyzeFunction converts it into a truncated-but-valid Result; it
// never escapes the engine.
var errStopExploration = errors.New("symexec: exploration stopped")

// stop records the first truncation reason and returns the unwind sentinel.
// The stop flag makes every path worker's next step() observe the
// truncation, so parallel exploration halts promptly instead of each worker
// discovering the budget independently.
func (e *Engine) stop(reason TruncReason) error {
	e.truncMu.Lock()
	if e.trunc == TruncNone {
		e.trunc = reason
	}
	e.truncMu.Unlock()
	e.stopFlag.Store(true)
	return errStopExploration
}

// markTruncated records a truncation reason without halting exploration —
// for degradations that under-approximate a path (skipped calls, havoc'd
// summaries) rather than cutting the path space. First reason wins, same as
// stop.
func (e *Engine) markTruncated(reason TruncReason) {
	e.truncMu.Lock()
	if e.trunc == TruncNone {
		e.trunc = reason
	}
	e.truncMu.Unlock()
}
