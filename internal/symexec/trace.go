package symexec

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Trace records exploded-state snapshots in the style of Table IV: for each
// visited statement, the environment (lvalue → region), the store
// (region → symbolic value) and the path condition π. Recording stops at
// TraceCap rows; further snapshots are counted, not silently discarded.
type Trace struct {
	rows    []TraceRow
	dropped int
}

// TraceRow is one state snapshot.
type TraceRow struct {
	// State is the sequence label (A, B, C, … then S26 past 26).
	State string
	// Stmt is the statement about to be evaluated.
	Stmt string
	// Env lists "lvalue → region" bindings.
	Env []string
	// Store lists "region → value" bindings.
	Store []string
	// PC is the rendered path condition.
	PC string
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Rows returns the snapshots in exploration order.
func (t *Trace) Rows() []TraceRow {
	out := make([]TraceRow, len(t.rows))
	copy(out, t.rows)
	return out
}

// Len returns the number of snapshots.
func (t *Trace) Len() int { return len(t.rows) }

// Dropped returns the number of snapshots discarded past TraceCap.
func (t *Trace) Dropped() int { return t.dropped }

// Render pretty-prints the trace. Truncation is made visible: when rows
// were dropped past TraceCap, a footer reports how many.
func (t *Trace) Render() string {
	var sb strings.Builder
	for _, r := range t.rows {
		fmt.Fprintf(&sb, "state %s: %s\n", r.State, r.Stmt)
		fmt.Fprintf(&sb, "  env:   %s\n", strings.Join(r.Env, ", "))
		fmt.Fprintf(&sb, "  store: %s\n", strings.Join(r.Store, ", "))
		fmt.Fprintf(&sb, "  π:     %s\n", r.PC)
	}
	if t.dropped > 0 {
		fmt.Fprintf(&sb, "… (%d rows omitted)\n", t.dropped)
	}
	return sb.String()
}

func stateLabel(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("S%d", i)
}

// snapshot records the current state if tracing is on; it always counts the
// state for the Table IV state metric. Rows past TraceCap are counted as
// dropped rather than silently discarded. Trace recording itself only runs
// under sequential exploration (TrackTrace disables path workers), so the
// row append needs no lock; the state counter is shared and atomic.
func (e *Engine) snapshot(st *state, stmt string) {
	atomic.AddInt64(&e.states, 1)
	e.obs.Add("symexec.states", 1)
	if e.res.Trace == nil {
		return
	}
	if e.res.Trace.Len() >= TraceCap {
		e.res.Trace.dropped++
		e.obs.Add("symexec.trace.dropped", 1)
		return
	}
	row := TraceRow{
		State: stateLabel(e.res.Trace.Len()),
		Stmt:  stmt,
		PC:    st.pc.String(),
	}
	for _, b := range e.env.Bindings() {
		row.Env = append(row.Env, b.LValue+" → "+b.Region.String())
	}
	for _, b := range st.store.Bindings() {
		row.Store = append(row.Store, b.Region.String()+" → "+b.Val.String())
	}
	e.res.Trace.rows = append(e.res.Trace.rows, row)
}
