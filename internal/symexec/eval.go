package symexec

import (
	"fmt"
	"strconv"

	"privacyscope/internal/mem"
	"privacyscope/internal/minic"
	"privacyscope/internal/sym"
)

// eval evaluates an expression in a state, returning its symbolic value and
// static type. Assignments and calls mutate the state in place (expressions
// never fork; only statements do).
func (e *Engine) eval(st *state, x minic.Expr) (mem.SVal, minic.Type, error) {
	switch v := x.(type) {
	case *minic.IntLitExpr:
		return mem.Scalar{E: sym.IntConst{V: int32(v.V)}}, minic.Basic{Kind: minic.Int}, nil
	case *minic.FloatLitExpr:
		return mem.Scalar{E: sym.FloatConst{V: v.V}}, minic.Basic{Kind: minic.Double}, nil
	case *minic.StringLitExpr:
		// Opaque non-secret pointer (format strings etc.).
		return mem.Scalar{E: sym.IntConst{V: 0}}, minic.Pointer{Elem: minic.Basic{Kind: minic.Char}}, nil
	case *minic.IdentExpr, *minic.IndexExpr, *minic.MemberExpr, *minic.DerefExpr:
		reg, ty, err := e.lplace(st, x)
		if err != nil {
			return nil, nil, err
		}
		// Arrays decay to their first-element address.
		if arr, ok := ty.(minic.Array); ok {
			return mem.Loc{R: reg}, minic.Pointer{Elem: arr.Elem}, nil
		}
		if stt, ok := ty.(*minic.StructType); ok {
			return mem.Loc{R: reg}, minic.Pointer{Elem: stt}, nil
		}
		val, err := e.load(st, reg, ty)
		if err != nil {
			return nil, nil, err
		}
		return val, ty, nil
	case *minic.AddrExpr:
		reg, ty, err := e.lplace(st, v.X)
		if err != nil {
			return nil, nil, err
		}
		return mem.Loc{R: reg}, minic.Pointer{Elem: ty}, nil
	case *minic.AssignExpr:
		return e.evalAssign(st, v)
	case *minic.IncDecExpr:
		return e.evalIncDec(st, v)
	case *minic.UnExpr:
		val, ty, err := e.eval(st, v.X)
		if err != nil {
			return nil, nil, err
		}
		return mem.Scalar{E: e.itn.NewUnary(v.Op, scalarOf(val))}, ty, nil
	case *minic.BinExpr:
		return e.evalBinary(st, v)
	case *minic.CondExpr:
		return e.evalCond(st, v)
	case *minic.CastExpr:
		val, _, err := e.eval(st, v.X)
		if err != nil {
			return nil, nil, err
		}
		return coerceSVal(val, v.To), v.To, nil
	case *minic.SizeofExpr:
		size := 0
		if v.Ty != nil {
			size = minic.SizeOf(v.Ty)
		} else {
			_, ty, err := e.eval(st, v.X)
			if err != nil {
				return nil, nil, err
			}
			size = minic.SizeOf(ty)
		}
		return mem.Scalar{E: sym.IntConst{V: int32(size)}}, minic.Basic{Kind: minic.Int}, nil
	case *minic.CallExpr:
		return e.evalCall(st, v)
	}
	return nil, nil, fmt.Errorf("symexec: unknown expression %T", x)
}

func (e *Engine) evalAssign(st *state, v *minic.AssignExpr) (mem.SVal, minic.Type, error) {
	reg, ty, err := e.lplace(st, v.LHS)
	if err != nil {
		return nil, nil, err
	}
	rhs, _, err := e.eval(st, v.RHS)
	if err != nil {
		return nil, nil, err
	}
	if v.Op != 0 {
		cur, err := e.load(st, reg, ty)
		if err != nil {
			return nil, nil, err
		}
		rhs = mem.Scalar{E: e.itn.NewBinary(v.Op, scalarOf(cur), scalarOf(rhs))}
	}
	out := coerceSVal(rhs, ty)
	st.store.Bind(reg, out)
	return out, ty, nil
}

func (e *Engine) evalIncDec(st *state, v *minic.IncDecExpr) (mem.SVal, minic.Type, error) {
	reg, ty, err := e.lplace(st, v.X)
	if err != nil {
		return nil, nil, err
	}
	cur, err := e.load(st, reg, ty)
	if err != nil {
		return nil, nil, err
	}
	op := sym.OpAdd
	if v.Decr {
		op = sym.OpSub
	}
	updated := mem.Scalar{E: e.itn.NewBinary(op, scalarOf(cur), sym.IntConst{V: 1})}
	st.store.Bind(reg, updated)
	if v.Prefix {
		return updated, ty, nil
	}
	return cur, ty, nil
}

func (e *Engine) evalBinary(st *state, v *minic.BinExpr) (mem.SVal, minic.Type, error) {
	l, lty, err := e.eval(st, v.L)
	if err != nil {
		return nil, nil, err
	}
	// Pointer arithmetic: p ± i moves the element index.
	if loc, isLoc := l.(mem.Loc); isLoc && (v.Op == sym.OpAdd || v.Op == sym.OpSub) {
		r, _, err := e.eval(st, v.R)
		if err != nil {
			return nil, nil, err
		}
		idx, concrete := concreteInt(scalarOf(r))
		if !concrete {
			// Symbolic pointer arithmetic degrades to the summary
			// element.
			return mem.Loc{R: e.elementOf(loc.R, summaryIndex)}, lty, nil
		}
		if v.Op == sym.OpSub {
			idx = -idx
		}
		return mem.Loc{R: e.shiftRegion(loc.R, idx)}, lty, nil
	}
	r, rty, err := e.eval(st, v.R)
	if err != nil {
		return nil, nil, err
	}
	_ = rty
	return mem.Scalar{E: e.itn.NewBinary(v.Op, scalarOf(l), scalarOf(r))}, binResultType(lty), nil
}

func binResultType(lty minic.Type) minic.Type {
	if minic.IsFloatType(lty) {
		return minic.Basic{Kind: minic.Double}
	}
	return minic.Basic{Kind: minic.Int}
}

func (e *Engine) evalCond(st *state, v *minic.CondExpr) (mem.SVal, minic.Type, error) {
	condVal, _, err := e.eval(st, v.Cond)
	if err != nil {
		return nil, nil, err
	}
	cond := e.itn.Truth(scalarOf(condVal))
	if c, ok := cond.(sym.IntConst); ok {
		if c.V != 0 {
			return e.eval(st, v.Then)
		}
		return e.eval(st, v.Else)
	}
	// Symbolic selector: an uninterpreted ite keeps all taints.
	thenV, ty, err := e.eval(st, v.Then)
	if err != nil {
		return nil, nil, err
	}
	elseV, _, err := e.eval(st, v.Else)
	if err != nil {
		return nil, nil, err
	}
	ite := e.itn.NewCall("ite", []sym.Expr{cond, scalarOf(thenV), scalarOf(elseV)})
	return mem.Scalar{E: ite}, ty, nil
}

// summaryIndex is the pseudo element index standing for "some element"
// when the index expression is symbolic.
const summaryIndex = -1

// lplace resolves an lvalue expression to a region and its element type.
func (e *Engine) lplace(st *state, x minic.Expr) (mem.Region, minic.Type, error) {
	switch v := x.(type) {
	case *minic.IdentExpr:
		b, ok := st.frame().lookup(v.Name)
		if !ok {
			if g := e.globalDecl(v.Name); g != nil {
				reg := e.mgr.Var("::"+g.Name, 0)
				e.mapMu.Lock()
				e.rootDisplay[reg.Key()] = g.Name
				e.mapMu.Unlock()
				return reg, g.Type, nil
			}
			return nil, nil, &minic.Error{Pos: v.Pos, Msg: "undeclared identifier " + v.Name}
		}
		return b.region, b.ty, nil
	case *minic.IndexExpr:
		return e.indexPlace(st, v)
	case *minic.DerefExpr:
		val, ty, err := e.eval(st, v.X)
		if err != nil {
			return nil, nil, err
		}
		loc, ok := val.(mem.Loc)
		if !ok {
			return nil, nil, &minic.Error{Pos: v.Pos, Msg: "dereference of non-pointer value"}
		}
		elem, _ := minic.ElemType(ty)
		if elem == nil {
			elem = minic.Basic{Kind: minic.Int}
		}
		if blk, isBlk := loc.R.(*mem.SymRegion); isBlk {
			return e.elementOf(blk, 0), elem, nil
		}
		return loc.R, elem, nil
	case *minic.MemberExpr:
		return e.memberPlace(st, v)
	}
	return nil, nil, fmt.Errorf("symexec: not an lvalue: %T", x)
}

func (e *Engine) globalDecl(name string) *minic.VarDecl {
	if e.prog.Module == nil {
		return nil
	}
	for _, g := range e.prog.Module.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

func (e *Engine) indexPlace(st *state, v *minic.IndexExpr) (mem.Region, minic.Type, error) {
	idxVal, _, err := e.eval(st, v.Index)
	if err != nil {
		return nil, nil, err
	}
	idx, concrete := concreteInt(scalarOf(idxVal))
	if !concrete {
		idx = summaryIndex
		e.warn(st, "symbolic array index summarized")
	}

	// Array lvalue base: subscript within the same object.
	if reg, ty, err := e.lplace(st, v.X); err == nil {
		if arr, ok := ty.(minic.Array); ok {
			er := e.elementOf(reg, idx)
			e.env.Bind(minic.ExprString(v), er)
			e.noteAccess(st, v.Pos, er, idxVal, concrete)
			return er, arr.Elem, nil
		}
	}
	// Pointer base.
	val, ty, err := e.eval(st, v.X)
	if err != nil {
		return nil, nil, err
	}
	loc, ok := val.(mem.Loc)
	if !ok {
		return nil, nil, &minic.Error{Pos: v.Pos, Msg: "indexing a non-pointer"}
	}
	elem, ok := minic.ElemType(ty)
	if !ok {
		elem = minic.Basic{Kind: minic.Int}
	}
	er := e.shiftRegion(loc.R, idx)
	e.env.Bind(minic.ExprString(v), er)
	e.noteAccess(st, v.Pos, er, idxVal, concrete)
	return er, elem, nil
}

// noteAccess records a memory subscript whose index expression carries
// secret taint. Concrete indices are skipped: the address is then fixed for
// all secret values, so the access pattern reveals nothing.
func (e *Engine) noteAccess(st *state, pos minic.Pos, er mem.Region, idxVal mem.SVal, concrete bool) {
	if !e.opts.RecordSecretAccess || concrete {
		return
	}
	ix := scalarOf(idxVal)
	if sym.TaintOf(ix).IsBottom() {
		return
	}
	st.accesses = append(st.accesses, AccessEvent{Pos: pos, Display: e.displayName(er), Index: ix})
	e.obs.Add("symexec.events.secret_indices", 1)
}

// elementOf returns the element region, collapsing summary indices.
func (e *Engine) elementOf(super mem.Region, idx int) mem.Region {
	return e.mgr.Element(super, idx)
}

// shiftRegion computes pointer movement: a SymRegion base becomes its
// element; an ElementRegion shifts its index.
func (e *Engine) shiftRegion(r mem.Region, delta int) mem.Region {
	switch v := r.(type) {
	case *mem.ElementRegion:
		if v.Index == summaryIndex || delta == summaryIndex {
			return e.mgr.Element(v.Super(), summaryIndex)
		}
		return e.mgr.Element(v.Super(), v.Index+delta)
	default:
		return e.mgr.Element(r, delta)
	}
}

func (e *Engine) memberPlace(st *state, v *minic.MemberExpr) (mem.Region, minic.Type, error) {
	var base mem.Region
	var baseTy minic.Type
	if v.Arrow {
		val, ty, err := e.eval(st, v.X)
		if err != nil {
			return nil, nil, err
		}
		loc, ok := val.(mem.Loc)
		if !ok {
			return nil, nil, &minic.Error{Pos: v.Pos, Msg: "-> on non-pointer value"}
		}
		base = loc.R
		baseTy, _ = minic.ElemType(ty)
	} else {
		reg, ty, err := e.lplace(st, v.X)
		if err != nil {
			return nil, nil, err
		}
		base = reg
		baseTy = ty
	}
	stt, ok := baseTy.(*minic.StructType)
	if !ok {
		return nil, nil, &minic.Error{Pos: v.Pos, Msg: "member access on non-struct"}
	}
	fty, ok := stt.FieldType(v.Field)
	if !ok {
		return nil, nil, &minic.Error{Pos: v.Pos, Msg: "no field " + v.Field + " in " + stt.Name}
	}
	fr := e.mgr.Field(base, v.Field)
	e.env.Bind(minic.ExprString(v), fr)
	return fr, fty, nil
}

// load reads a region, conjuring a memoized input value on a miss.
func (e *Engine) load(st *state, reg mem.Region, ty minic.Type) (mem.SVal, error) {
	if v, ok := st.store.Lookup(reg); ok {
		return v, nil
	}
	// Summary fallback: a concrete-index miss after a summarized write
	// reads the summary slot.
	if er, isElem := reg.(*mem.ElementRegion); isElem && er.Index != summaryIndex {
		if v, ok := st.store.Lookup(e.mgr.Element(er.Super(), summaryIndex)); ok {
			return v, nil
		}
	}
	// PRIML's default-zero store: an unwritten variable reads as 0, and
	// the read is not materialized in Δ (no binding, no memoization).
	if e.opts.ZeroDefaultVars {
		return mem.Scalar{E: sym.IntConst{V: 0}}, nil
	}
	key := reg.Key()
	e.mapMu.Lock()
	if v, ok := e.inputSyms[key]; ok {
		e.mapMu.Unlock()
		st.store.Bind(reg, v)
		return v, nil
	}
	root := mem.Root(reg)
	_, isSymBlock := root.(*mem.SymRegion)
	secret := e.secretRoots[root.Key()]
	display := e.displayNameLocked(reg)

	// [out]-only buffers enter the enclave zeroed (the marshalling proxy
	// never copies host memory in), so reads of unwritten cells yield 0.
	if _, isOut := e.outRoots[root.Key()]; isOut && !secret {
		val := mem.SVal(mem.Scalar{E: sym.IntConst{V: 0}})
		e.inputSyms[key] = val
		e.mapMu.Unlock()
		st.store.Bind(reg, val)
		return val, nil
	}

	var val mem.SVal
	if _, isPtr := ty.(minic.Pointer); isPtr && isSymBlock {
		// Unknown pointer inside an unknown block: a nested block.
		pointee := e.builder.FreshPublic(display + "_blk")
		nested := e.mgr.SymBlock(pointee, display, secret)
		e.rootDisplay[nested.Key()] = display
		if secret {
			e.secretRoots[nested.Key()] = true
		}
		val = mem.Loc{R: nested}
	} else if secret {
		// [in]-parameter blocks and re-symbolized decrypt destinations
		// conjure fresh secret data.
		s := e.builder.FreshSecret(display)
		e.res.SecretSymbols[display] = s
		val = mem.Scalar{E: s}
	} else {
		val = mem.Scalar{E: e.builder.FreshPublic(display)}
	}
	e.inputSyms[key] = val
	e.mapMu.Unlock()
	st.store.Bind(reg, val)
	return val, nil
}

// displayName renders a region in source notation (secrets[0], model.bias).
func (e *Engine) displayName(reg mem.Region) string {
	e.mapMu.Lock()
	defer e.mapMu.Unlock()
	return e.displayNameLocked(reg)
}

func (e *Engine) displayNameLocked(reg mem.Region) string {
	switch v := reg.(type) {
	case *mem.ElementRegion:
		idx := "*"
		if v.Index != summaryIndex {
			idx = strconv.Itoa(v.Index)
		}
		return e.displayNameLocked(v.Super()) + "[" + idx + "]"
	case *mem.FieldRegion:
		return e.displayNameLocked(v.Super()) + "." + v.Field
	default:
		if d, ok := e.rootDisplay[reg.Key()]; ok {
			return d
		}
		return reg.String()
	}
}

func concreteInt(x sym.Expr) (int, bool) {
	switch c := x.(type) {
	case sym.IntConst:
		return int(c.V), true
	case sym.FloatConst:
		return int(c.V), true
	}
	return 0, false
}
