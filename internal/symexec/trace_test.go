package symexec

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
)

// longProgram emits more statements than TraceCap so the trace must drop
// rows.
func longProgram() string {
	var sb strings.Builder
	sb.WriteString("int f(int *secrets, int *output) {\n")
	sb.WriteString("    int acc = 0;\n")
	for i := 0; i < TraceCap+40; i++ {
		fmt.Fprintf(&sb, "    acc = acc + %d;\n", i%7)
	}
	sb.WriteString("    output[0] = acc;\n")
	sb.WriteString("    return 0;\n}\n")
	return sb.String()
}

func TestTraceTruncationIsVisible(t *testing.T) {
	file, err := minic.Parse(longProgram())
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	opts := DefaultOptions()
	opts.TrackTrace = true
	opts.Obs = m
	res, err := New(file, opts).AnalyzeFunction(context.Background(), "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() != TraceCap {
		t.Errorf("trace rows = %d, want cap %d", res.Trace.Len(), TraceCap)
	}
	if res.TraceTruncated == 0 || res.Trace.Dropped() != res.TraceTruncated {
		t.Errorf("TraceTruncated = %d, Dropped = %d; want equal and non-zero",
			res.TraceTruncated, res.Trace.Dropped())
	}
	footer := fmt.Sprintf("… (%d rows omitted)", res.TraceTruncated)
	if !strings.Contains(res.Trace.Render(), footer) {
		t.Errorf("Render missing footer %q", footer)
	}
	if got := m.Counter("symexec.trace.dropped"); got != int64(res.TraceTruncated) {
		t.Errorf("dropped counter = %d, want %d", got, res.TraceTruncated)
	}
}

func TestShortTraceHasNoFooter(t *testing.T) {
	file, err := minic.Parse(`int f(int *secrets, int *output) { output[0] = 1; return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TrackTrace = true
	res, err := New(file, opts).AnalyzeFunction(context.Background(), "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceTruncated != 0 {
		t.Errorf("TraceTruncated = %d, want 0", res.TraceTruncated)
	}
	if strings.Contains(res.Trace.Render(), "rows omitted") {
		t.Error("footer rendered for a complete trace")
	}
}

// TestEngineCounters asserts the engine-level telemetry a forking program
// must produce.
func TestEngineCounters(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int a = secrets[0];
    if (a > 0) {
        if (a < 0) { output[0] = 1; } else { output[0] = 2; }
    } else { output[0] = 3; }
    return 0;
}`
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	opts := DefaultOptions()
	opts.Obs = m
	res, err := New(file, opts).AnalyzeFunction(context.Background(), "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("symexec.paths.completed"); got != int64(len(res.Paths)) {
		t.Errorf("paths.completed = %d, want %d", got, len(res.Paths))
	}
	if m.Counter("symexec.forks") < 2 {
		t.Errorf("forks = %d, want ≥ 2", m.Counter("symexec.forks"))
	}
	// a > 0 ∧ a < 0 is infeasible and must be pruned.
	if m.Counter("symexec.paths.pruned") < 1 {
		t.Errorf("paths.pruned = %d, want ≥ 1", m.Counter("symexec.paths.pruned"))
	}
	if m.Counter("symexec.steps") == 0 || m.Counter("symexec.states") == 0 {
		t.Error("steps/states counters must be non-zero")
	}
	if m.Counter("solver.queries") == 0 {
		t.Error("solver queries must be counted through the engine's solver")
	}
	snap := m.Snapshot()
	if snap.Dists["symexec.path.depth"].Count != int64(len(res.Paths)) {
		t.Errorf("path.depth samples = %d, want %d",
			snap.Dists["symexec.path.depth"].Count, len(res.Paths))
	}
}

func TestLoopBoundHitCounter(t *testing.T) {
	src := `
int f(int *secrets, int n, int *output) {
    int i = 0;
    while (i < n) { i++; }
    output[0] = 0;
    return 0;
}`
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	opts := DefaultOptions()
	opts.LoopBound = 3
	opts.Obs = m
	_, err = New(file, opts).AnalyzeFunction(context.Background(), "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "n", Class: ParamPublic},
		{Name: "output", Class: ParamOut},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Counter("symexec.loop.bound_hits") == 0 {
		t.Error("symbolic loop at bound must bump symexec.loop.bound_hits")
	}
}
