package symexec

import (
	"strings"
	"testing"

	"privacyscope/internal/minic"
	"privacyscope/internal/sym"
)

// TestStatementCallForksPropagate exercises execCallStmt: a forking callee
// invoked in statement position must contribute every path to the caller
// (the km_assign pattern of the Kmeans port).
func TestStatementCallForksPropagate(t *testing.T) {
	src := `
void classify(int *secrets, int *labels) {
    if (secrets[0] > 0) { labels[0] = 1; }
    else { labels[0] = 0; }
}
int f(int *secrets, int *output) {
    int labels[1];
    classify(secrets, labels);
    output[0] = labels[0] * 10;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if len(res.Paths) != 2 {
		t.Fatalf("paths = %d, want 2 (fork inside callee)", len(res.Paths))
	}
	values := map[string]bool{}
	for _, p := range res.Paths {
		if len(p.Outs) != 1 {
			t.Fatalf("outs = %+v", p.Outs)
		}
		values[p.Outs[0].Value.String()] = true
	}
	if !values["10"] || !values["0"] {
		t.Errorf("out values = %v, want 10 and 0", values)
	}
}

func TestStatementCallReturnDoesNotExitCaller(t *testing.T) {
	src := `
int helper(int *output) {
    output[0] = 1;
    return 99;
}
int f(int *secrets, int *output) {
    helper(output);
    output[1] = 2;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	p := res.Paths[0]
	if p.Return.String() != "0" {
		t.Errorf("caller return = %s, want 0 (callee return must not escape)", p.Return)
	}
	if len(p.Outs) != 2 {
		t.Errorf("outs = %+v, want both writes", p.Outs)
	}
}

func TestInlineDepthOnStatementCall(t *testing.T) {
	src := `
void spin(int *output) {
    spin(output);
}
int f(int *secrets, int *output) {
    spin(output);
    return 0;
}
`
	opts := DefaultOptions()
	opts.InlineDepth = 4
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), opts)
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "inline depth exceeded") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v", res.Warnings)
	}
}

func TestCalleeWithAllPathsInfeasible(t *testing.T) {
	src := `
int weird(int x) {
    if (x > 0) {
        if (x < 0) { return 1; }
        return 2;
    }
    return 3;
}
int f(int *secrets, int *output) {
    output[0] = weird(5) + 0 * secrets[0];
    return 0;
}
`
	// weird(5) is concrete: only the x>0, !(x<0) path is live → 2.
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if got := res.Paths[0].Outs[0].Value.String(); got != "2" {
		t.Errorf("value = %s, want 2", got)
	}
}

func TestArrowMemberThroughStructPointer(t *testing.T) {
	src := `
struct Sample { float v; float w; };
float f(struct Sample *s, float *output) {
    output[0] = s->v * 2.0;
    return s->w;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "s", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	o := res.Paths[0].Outs[0]
	if !sym.TaintOf(o.Value).IsSingle() {
		t.Errorf("taint = %v", sym.TaintOf(o.Value))
	}
	if !strings.Contains(o.Value.String(), "s.v") {
		t.Errorf("value = %s, want s.v involved", o.Value)
	}
	if !sym.TaintOf(res.Paths[0].Return).IsSingle() {
		t.Error("s->w must be a distinct secret")
	}
}

func TestCondExprConcreteSelector(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    output[0] = 1 > 0 ? secrets[0] : 99;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if got := res.Paths[0].Outs[0].Value.String(); got != "secrets[0]" {
		t.Errorf("value = %s", got)
	}
}

func TestSizeofAndCast(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    output[0] = sizeof(int) + sizeof(double);
    float x = 3.9;
    output[1] = (int)x;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	outs := map[string]string{}
	for _, o := range res.Paths[0].Outs {
		outs[o.Display] = o.Value.String()
	}
	if outs["output[0]"] != "12" {
		t.Errorf("sizeof sum = %s, want 12", outs["output[0]"])
	}
	if outs["output[1]"] != "3" {
		t.Errorf("cast = %s, want 3", outs["output[1]"])
	}
}

func TestWhileBreakContinue(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int i = 0;
    int total = 0;
    while (1) {
        i++;
        if (i == 2) continue;
        if (i > 4) break;
        total += i;
    }
    output[0] = total;
    return 0;
}
`
	// i: 1,3,4 summed = 8 (2 skipped, loop breaks at 5).
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if got := res.Paths[0].Outs[0].Value.String(); got != "8" {
		t.Errorf("total = %s, want 8", got)
	}
}

func TestMallocFreeSrandModeled(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int *buf = malloc(4);
    buf[0] = secrets[0];
    output[0] = buf[0];
    srand(7);
    free(buf);
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	o := res.Paths[0].Outs[0]
	if !sym.TaintOf(o.Value).IsSingle() {
		t.Errorf("heap round-trip lost taint: %v", sym.TaintOf(o.Value))
	}
}

func TestUnknownExternWarns(t *testing.T) {
	src := `
int mystery(int x);
int f(int *secrets, int *output) {
    output[0] = mystery(secrets[0]);
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "unmodeled function mystery") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v", res.Warnings)
	}
	// The opaque result is public: conservative for nonreversibility
	// (documented unsoundness for externs, caught by the sema whitelist
	// in normal operation).
	if !sym.TaintOf(res.Paths[0].Outs[0].Value).IsBottom() {
		t.Error("extern result should be an unconstrained public symbol")
	}
}

func TestGlobalMutationVisibleAcrossStatements(t *testing.T) {
	src := `
int counter = 3;
int f(int *secrets, int *output) {
    counter = counter + secrets[0];
    output[0] = counter;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	o := res.Paths[0].Outs[0]
	if o.Value.String() != "(3 + secrets[0])" {
		t.Errorf("value = %s", o.Value)
	}
	if !sym.TaintOf(o.Value).IsSingle() {
		t.Errorf("taint = %v", sym.TaintOf(o.Value))
	}
}

func Test2DArrayFlow(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int m[2][2];
    m[0][1] = secrets[0];
    m[1][0] = 7;
    output[0] = m[0][1] + m[1][0];
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	o := res.Paths[0].Outs[0]
	if o.Value.String() != "(secrets[0] + 7)" {
		t.Errorf("value = %s", o.Value)
	}
}

func TestMemcpySymbolicLengthSummarized(t *testing.T) {
	src := `
int f(int *secrets, int n, int *output) {
    int tmp[4];
    memcpy(tmp, secrets, n);
    output[0] = tmp[0];
    return 0;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "n", Class: ParamPublic},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "memcpy with symbolic length") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v", res.Warnings)
	}
	// The summary read still carries secret taint.
	if sym.TaintOf(res.Paths[0].Outs[0].Value).IsBottom() {
		t.Error("summarized copy lost taint")
	}
}

func TestMemsetSymbolicLengthSummarized(t *testing.T) {
	src := `
int f(int *secrets, int n, int *output) {
    int tmp[4];
    tmp[0] = secrets[0];
    memset(tmp, 0, n);
    output[0] = 1;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "n", Class: ParamPublic},
		{Name: "output", Class: ParamOut},
	}, DefaultOptions())
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "memset with symbolic length") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v", res.Warnings)
	}
}

func TestResultHelpers(t *testing.T) {
	res := analyzeSrc(t, listing1, "enclave_process_data", listing1Params(), DefaultOptions())
	s0 := res.SecretSymbols["secrets[0]"]
	if got := res.SecretSymbolByTag(int(s0.Tag)); got != s0 {
		t.Error("SecretSymbolByTag lookup failed")
	}
	if res.SecretSymbolByTag(999) != nil {
		t.Error("unknown tag must return nil")
	}
	if ParamSecret.String() != "[in]" || ParamOut.String() != "[out]" ||
		ParamInOut.String() != "[in,out]" || ParamPublic.String() != "public" {
		t.Error("ParamClass strings wrong")
	}
}

func TestTraceRowsAndLabels(t *testing.T) {
	opts := DefaultOptions()
	opts.TrackTrace = true
	res := analyzeSrc(t, listing1, "enclave_process_data", listing1Params(), opts)
	rows := res.Trace.Rows()
	if len(rows) != res.Trace.Len() {
		t.Error("Rows/Len mismatch")
	}
	if rows[0].State != "A" || rows[1].State != "B" {
		t.Errorf("labels = %s, %s", rows[0].State, rows[1].State)
	}
	if stateLabel(30) != "S30" {
		t.Errorf("stateLabel(30) = %s", stateLabel(30))
	}
}

func TestEngineBuilderExposed(t *testing.T) {
	e := New(minic.MustParse("int f(void) { return 0; }"), DefaultOptions())
	if e.Builder() == nil {
		t.Fatal("Builder must be non-nil")
	}
}

func TestStringLiteralArgOpaque(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    printf("all good");
    output[0] = 1;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if len(res.Paths[0].Ocalls) != 1 {
		t.Fatalf("ocalls = %+v", res.Paths[0].Ocalls)
	}
	for _, a := range res.Paths[0].Ocalls[0].Args {
		if !sym.TaintOf(a).IsBottom() {
			t.Error("string literal must be untainted")
		}
	}
}

func TestSymbolicSwitchForks(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    switch (secrets[0]) {
    case 1:
        output[0] = 10;
        break;
    case 2:
        output[0] = 20;
        break;
    default:
        output[0] = 30;
    }
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if len(res.Paths) != 3 {
		t.Fatalf("paths = %d, want 3 (case 1, case 2, default)", len(res.Paths))
	}
	values := map[string]string{}
	for _, p := range res.Paths {
		values[p.PC.String()] = p.Outs[0].Value.String()
	}
	sawDefault := false
	for pc, v := range values {
		switch {
		case strings.Contains(pc, "== 1") && !strings.Contains(pc, "!="):
			if v != "10" {
				t.Errorf("case 1 value = %s on %s", v, pc)
			}
		case strings.Contains(pc, "== 2"):
			if v != "20" {
				t.Errorf("case 2 value = %s on %s", v, pc)
			}
		default:
			sawDefault = true
			if v != "30" {
				t.Errorf("default value = %s on %s", v, pc)
			}
		}
	}
	if !sawDefault {
		t.Error("default path missing")
	}
}

func TestSymbolicSwitchImplicitLeakDetected(t *testing.T) {
	// The switch on a single secret revealing different constants is an
	// implicit leak — checked through the full checker.
	src := `
int f(int *secrets, int *output) {
    switch (secrets[0]) {
    case 7:
        output[0] = 1;
        break;
    default:
        output[0] = 0;
    }
    return 0;
}
`
	file := minic.MustParse(src)
	report, err := coreCheck(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(report) == 0 {
		t.Fatal("switch-based implicit leak missed")
	}
}

func TestConcreteSwitchSelectsStatically(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int x = 2;
    switch (x) {
    case 1:
        output[0] = secrets[0];
        break;
    case 2:
        output[0] = 5;
        break;
    }
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(res.Paths))
	}
	if res.Paths[0].Outs[0].Value.String() != "5" {
		t.Errorf("value = %s (dead case executed?)", res.Paths[0].Outs[0].Value)
	}
}

func TestSwitchFallthroughSymbolic(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int x = 1;
    int r = 0;
    switch (x) {
    case 1:
        r += 1;
    case 2:
        r += 2;
        break;
    case 3:
        r += 100;
    }
    output[0] = r;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if got := res.Paths[0].Outs[0].Value.String(); got != "3" {
		t.Errorf("fallthrough value = %s, want 3", got)
	}
}

func TestDoWhileSymbolic(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int i = 0;
    int total = 0;
    do {
        total += i;
        i++;
    } while (i < 4);
    output[0] = total;
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if got := res.Paths[0].Outs[0].Value.String(); got != "6" {
		t.Errorf("do-while total = %s, want 6", got)
	}
}

func TestDoWhileBodyRunsOnceSymbolic(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int i = 9;
    do {
        output[0] = 42;
    } while (i < 0);
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	if got := res.Paths[0].Outs[0].Value.String(); got != "42" {
		t.Errorf("value = %s", got)
	}
}

func TestSgxReadRandFillsEntropy(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int noise[2];
    sgx_read_rand(noise, 2);
    output[0] = secrets[0] + noise[0];
    output[1] = noise[1];
    return 0;
}
`
	res := analyzeSrc(t, src, "f", listing1ParamsInt(), DefaultOptions())
	outs := map[string]sym.Expr{}
	for _, o := range res.Paths[0].Outs {
		outs[o.Display] = o.Value
	}
	if !sym.HasEntropy(outs["output[0]"]) {
		t.Errorf("output[0] = %s, want entropy-bearing", outs["output[0]"])
	}
	// Taint-wise output[0] is single (one secret + entropy).
	if !sym.TaintOf(outs["output[0]"]).IsSingle() {
		t.Errorf("taint = %v", sym.TaintOf(outs["output[0]"]))
	}
	if !sym.HasEntropy(outs["output[1]"]) {
		t.Errorf("output[1] = %s, want entropy", outs["output[1]"])
	}
}
