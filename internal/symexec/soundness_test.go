package symexec

// Cross-validation of the symbolic engine against the concrete
// interpreter: for every completed symbolic path, a concrete input
// satisfying its path condition must drive the real program along that
// path, and the concrete outputs must equal the symbolic output
// expressions evaluated under the same input. This is the engine-level
// soundness check underpinning all checker findings.

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"privacyscope/internal/interp"
	"privacyscope/internal/minic"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
)

// crossValidate explores fn symbolically, then for each path derives a
// model, runs the program concretely, and compares return values and every
// out-element.
func crossValidate(t *testing.T, src string, secretParam, outParam string, secretLen, outLen int) {
	t.Helper()
	file := minic.MustParse(src)
	engine := New(file, DefaultOptions())
	res, err := engine.AnalyzeFunction(context.Background(), "f", []ParamSpec{
		{Name: secretParam, Class: ParamSecret},
		{Name: outParam, Class: ParamOut},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) < 2 {
		t.Fatalf("want a branching program, got %d paths", len(res.Paths))
	}
	sv := solver.New()
	for i, p := range res.Paths {
		model, ok := sv.Model(p.PC, res.Builder.Symbols())
		if !ok {
			t.Errorf("path %d (%s): no model", i, p.PC)
			continue
		}
		// Concrete run with the model's secret values.
		machine, err := interp.NewMachine(file)
		if err != nil {
			t.Fatal(err)
		}
		secretBuf := interp.NewBuffer(secretParam, interp.CellInt, secretLen)
		for name, s := range res.SecretSymbols {
			idx, ok := indexOf(name, secretParam)
			if !ok {
				continue
			}
			if v, bound := model[s.ID]; bound {
				_ = secretBuf.Store(idx, interp.IntValue(int64(v.AsInt())))
			}
		}
		outBuf := interp.NewBuffer(outParam, interp.CellInt, outLen)
		ret, err := machine.Call("f", []interp.Value{
			interp.PtrValue(interp.Pointer{Obj: secretBuf}),
			interp.PtrValue(interp.Pointer{Obj: outBuf}),
		})
		if err != nil {
			t.Errorf("path %d: concrete run failed: %v", i, err)
			continue
		}
		// The concrete return must equal the symbolic return under the
		// model.
		if p.Return != nil {
			want, err := sym.Eval(p.Return, model)
			if err != nil {
				t.Errorf("path %d: return not evaluable: %v", i, err)
			} else if ret.Int() != int64(want.AsInt()) {
				t.Errorf("path %d: concrete return %d != symbolic %d (pc %s)",
					i, ret.Int(), want.AsInt(), p.PC)
			}
		}
		// Every out-write must match.
		for _, o := range p.Outs {
			idx, ok := indexOf(o.Display, outParam)
			if !ok {
				continue
			}
			cell, err := outBuf.Load(idx)
			if err != nil {
				t.Errorf("path %d: %s: %v", i, o.Display, err)
				continue
			}
			want, err := sym.Eval(o.Value, model)
			if err != nil {
				t.Errorf("path %d: %s not evaluable: %v", i, o.Display, err)
				continue
			}
			if cell.Int() != int64(want.AsInt()) {
				t.Errorf("path %d: %s concrete %d != symbolic %d",
					i, o.Display, cell.Int(), want.AsInt())
			}
		}
	}
}

func indexOf(display, param string) (int, bool) {
	if !strings.HasPrefix(display, param+"[") || !strings.HasSuffix(display, "]") {
		return 0, false
	}
	idx, err := strconv.Atoi(display[len(param)+1 : len(display)-1])
	return idx, err == nil
}

func TestCrossValidateListing1Style(t *testing.T) {
	crossValidate(t, `
int f(int *secrets, int *output) {
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}`, "secrets", "output", 2, 1)
}

func TestCrossValidateNestedBranches(t *testing.T) {
	crossValidate(t, `
int f(int *secrets, int *output) {
    int r = 0;
    if (secrets[0] > 10) {
        if (secrets[1] > 10) { r = 3; output[0] = 30; }
        else { r = 2; output[0] = 20; }
    } else {
        r = 1;
        output[0] = 10;
    }
    output[1] = secrets[0] + secrets[1];
    return r;
}`, "secrets", "output", 2, 2)
}

func TestCrossValidateLoopAndBranch(t *testing.T) {
	crossValidate(t, `
int f(int *secrets, int *output) {
    int total = 0;
    for (int i = 0; i < 4; i++) {
        total += secrets[i];
    }
    output[0] = total;
    if (secrets[0] == 7) return 99;
    return total;
}`, "secrets", "output", 4, 1)
}

func TestCrossValidateArithmeticMix(t *testing.T) {
	crossValidate(t, `
int f(int *secrets, int *output) {
    int a = secrets[0] * 3 - 2;
    int b = secrets[1] / 2 + secrets[2] % 5;
    output[0] = a;
    output[1] = a ^ b;
    if (a > b) return a - b;
    return b - a;
}`, "secrets", "output", 3, 2)
}

func TestCrossValidateCompoundAssignAndIncDec(t *testing.T) {
	crossValidate(t, `
int f(int *secrets, int *output) {
    int x = secrets[0];
    x += 5;
    x *= 2;
    x--;
    ++x;
    output[0] = x;
    if (x > 100) return 1;
    return 0;
}`, "secrets", "output", 1, 1)
}

// coreCheck is a tiny bridge used by switch tests: run the full checker
// without importing core (import cycle), approximated via implicit-style
// pairwise comparison over this package's results.
func coreCheck(file *minic.File) ([]string, error) {
	engine := New(file, DefaultOptions())
	res, err := engine.AnalyzeFunction(context.Background(), "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	})
	if err != nil {
		return nil, err
	}
	// Two paths with different output[0] values and pc differing only in
	// secrets constraints → leak.
	var leaks []string
	for i := 0; i < len(res.Paths); i++ {
		for j := i + 1; j < len(res.Paths); j++ {
			a, b := res.Paths[i], res.Paths[j]
			if len(a.Outs) == 0 || len(b.Outs) == 0 {
				continue
			}
			if !sym.Equal(a.Outs[0].Value, b.Outs[0].Value) {
				leaks = append(leaks, a.PC.String()+" vs "+b.PC.String())
			}
		}
	}
	return leaks, nil
}

func TestCrossValidateSwitch(t *testing.T) {
	crossValidate(t, `
int f(int *secrets, int *output) {
    int r = 0;
    switch (secrets[0]) {
    case 1:
        r = 10;
        break;
    case 2:
        r = 20;
    default:
        r = r + 30;
    }
    output[0] = r;
    return r;
}`, "secrets", "output", 1, 1)
}

func TestCrossValidateDoWhile(t *testing.T) {
	crossValidate(t, `
int f(int *secrets, int *output) {
    int i = 0;
    int total = 0;
    do {
        total += i;
        i++;
    } while (i < 3);
    output[0] = total + secrets[0];
    if (secrets[0] > 5) return 1;
    return 0;
}`, "secrets", "output", 1, 1)
}

func TestCrossValidateAllCompoundOps(t *testing.T) {
	crossValidate(t, `
int f(int *secrets, int *output) {
    int a = secrets[0];
    a += 3;
    a ^= 5;
    a &= 14;
    a |= 1;
    a <<= 1;
    a >>= 1;
    output[0] = a;
    if (secrets[0] > 8) return 1;
    return 0;
}`, "secrets", "output", 1, 1)
}
