package symexec

import (
	"context"
	"errors"
	"fmt"

	"privacyscope/internal/mem"
	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/taint"
)

// Engine errors.
var (
	ErrNoSuchFunc = errors.New("symexec: no such function")
)

// ctxCheckInterval is how many steps may pass between cooperative
// context checks: a cancelled or expired context stops the exploration
// within this many statement evaluations.
const ctxCheckInterval = 32

// Engine symbolically executes MiniC functions. Create one per analysis
// run; it is not safe for concurrent use.
type Engine struct {
	file    *minic.File
	opts    Options
	mgr     *mem.Manager
	builder *sym.Builder
	sv      *solver.Solver

	// inputSyms memoizes conjured input values per region key so every
	// path sees the same symbol for the same memory.
	inputSyms map[string]mem.SVal
	// secretRoots marks region roots whose unbound elements must conjure
	// *secret* symbols (SymRegions of [in] params and re-symbolized
	// decrypt destinations).
	secretRoots map[string]bool
	// rootDisplay maps region-root keys to source-level display names.
	rootDisplay map[string]string
	// outRoots maps [out]-parameter root keys to parameter names.
	outRoots map[string]string

	frameSeq int
	steps    int
	res      *Result
	env      *mem.Env
	obs      obs.Observer

	// ctx is the run's cancellation context; trunc records why the
	// exploration stopped early (TruncNone while it is still exhaustive);
	// pruned counts infeasible branches dropped by the solver.
	ctx    context.Context
	trunc  TruncReason
	pruned int
}

// New returns an engine over the file.
func New(file *minic.File, opts Options) *Engine {
	var alloc taint.Allocator
	o := obs.Or(opts.Obs)
	return &Engine{
		file:        file,
		opts:        opts,
		mgr:         mem.NewManager(),
		builder:     sym.NewBuilder(&alloc),
		sv:          solver.NewObserved(o),
		inputSyms:   make(map[string]mem.SVal),
		secretRoots: make(map[string]bool),
		rootDisplay: make(map[string]string),
		outRoots:    make(map[string]string),
		env:         mem.NewEnv(),
		obs:         o,
	}
}

// Builder exposes the engine's symbol builder (the checker needs it for
// witness models).
func (e *Engine) Builder() *sym.Builder { return e.builder }

// AnalyzeFunction explores every path of the named entry point under the
// given parameter classification. Exploration is fail-soft: when the path
// or step budget is exhausted, or ctx is cancelled or reaches its deadline,
// the engine stops and returns the paths completed so far with
// Result.Coverage recording the truncation — not an error. Errors are
// reserved for analysis failures (unknown entry point, semantic errors).
func (e *Engine) AnalyzeFunction(ctx context.Context, name string, params []ParamSpec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	fn, ok := e.file.Function(name)
	if !ok || fn.Body == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFunc, name)
	}
	classes := make(map[string]ParamClass, len(params))
	for _, p := range params {
		classes[p.Name] = p.Class
	}

	e.res = &Result{
		Function:      name,
		Builder:       e.builder,
		SecretSymbols: make(map[string]*sym.Symbol),
	}
	if e.opts.TrackTrace {
		e.res.Trace = NewTrace()
	}

	st := &state{
		pc:    solver.True(),
		store: mem.NewStore(),
	}
	// Seed globals with constant initializers; globals with dynamic or
	// absent initializers stay symbolic (conjured on first read).
	for _, g := range e.file.Globals {
		if c, ok := constInit(g.Init); ok {
			reg := e.mgr.Var("::"+g.Name, 0)
			e.rootDisplay[reg.Key()] = g.Name
			st.store.Bind(reg, coerceSVal(mem.Scalar{E: c}, g.Type))
		}
	}
	fr := e.pushFrame(st, fn)
	for _, p := range fn.Params {
		cls, ok := classes[p.Name]
		if !ok {
			cls = ParamPublic
		}
		if err := e.bindParam(st, fr, p, cls); err != nil {
			return nil, err
		}
	}
	e.snapshot(st, "entry "+name)

	err := e.execBlock(st, fn.Body, func(end *state, c ctl) error {
		ret := c.ret
		if c.kind != ctlReturn {
			ret = nil
		}
		return e.completePath(end, ret, c.retPos)
	})
	if err != nil && !errors.Is(err, errStopExploration) {
		return nil, err
	}
	if e.trunc != TruncNone {
		e.warn("exploration truncated: " + string(e.trunc))
	}
	incomplete := 0
	for _, p := range e.res.Paths {
		if p.Incomplete {
			incomplete++
		}
	}
	e.res.Coverage = Coverage{
		CompletedPaths:  len(e.res.Paths),
		IncompletePaths: incomplete,
		PrunedPaths:     e.pruned,
		StepsUsed:       e.steps,
		Truncated:       e.trunc != TruncNone,
		Reason:          e.trunc,
	}
	e.res.Regions = e.mgr.RegionCount()
	if e.res.Trace != nil {
		e.res.TraceTruncated = e.res.Trace.Dropped()
	}
	e.obs.Event("symexec.done",
		obs.F("function", name),
		obs.F("paths", fmt.Sprint(len(e.res.Paths))),
		obs.F("states", fmt.Sprint(e.res.States)),
		obs.F("truncated", string(e.trunc)))
	return e.res, nil
}

// bindParam sets up one entry parameter per its EDL class.
func (e *Engine) bindParam(st *state, fr *sframe, p *minic.VarDecl, cls ParamClass) error {
	reg := e.mgr.Var(p.Name, fr.id)
	fr.declare(p.Name, reg, p.Type)
	e.env.Bind(p.Name, reg)

	if _, isPtr := p.Type.(minic.Pointer); isPtr {
		secret := cls == ParamSecret || cls == ParamInOut
		pointee := e.builder.FreshPublic(p.Name + "_blk")
		blk := e.mgr.SymBlock(pointee, p.Name, secret)
		e.rootDisplay[blk.Key()] = p.Name
		if secret {
			e.secretRoots[blk.Key()] = true
		}
		if cls == ParamOut || cls == ParamInOut {
			e.outRoots[blk.Key()] = p.Name
		}
		st.store.Bind(reg, mem.Loc{R: blk})
		return nil
	}
	// Scalar parameter.
	var val sym.Expr
	if cls == ParamSecret || cls == ParamInOut {
		s := e.builder.FreshSecret(p.Name)
		e.res.SecretSymbols[p.Name] = s
		val = s
	} else {
		val = e.builder.FreshPublic(p.Name)
	}
	st.store.Bind(reg, mem.Scalar{E: val})
	return nil
}

// completePath records one finished path's observable outcome.
func (e *Engine) completePath(st *state, ret sym.Expr, retPos minic.Pos) error {
	if len(e.res.Paths) >= e.opts.maxPaths() {
		e.obs.Add("symexec.truncations.max_paths", 1)
		return e.stop(TruncPathBudget)
	}
	e.obs.Add("symexec.paths.completed", 1)
	if st.incomplete {
		e.obs.Add("symexec.paths.incomplete", 1)
	}
	e.obs.Observe("symexec.path.depth", int64(st.pc.Len()))
	e.obs.Observe("symexec.path.cost", int64(st.cost))
	pr := &PathResult{
		PC:         st.pc,
		Return:     ret,
		ReturnPos:  retPos,
		Ocalls:     st.ocalls,
		Incomplete: st.incomplete,
		Cost:       st.cost,
	}
	for _, b := range st.store.Bindings() {
		rootKey := mem.Root(b.Region).Key()
		param, isOut := e.outRoots[rootKey]
		if !isOut || b.Region == mem.Root(b.Region) {
			continue
		}
		sc, isScalar := b.Val.(mem.Scalar)
		if !isScalar {
			continue
		}
		pr.Outs = append(pr.Outs, OutWrite{
			Param:   param,
			Region:  b.Region,
			Display: e.displayName(b.Region),
			Value:   sc.E,
		})
	}
	e.res.Paths = append(e.res.Paths, pr)
	e.snapshot(st, "path end")
	return nil
}

// state is one exploded node: π, σ, call stack and per-path observations.
type state struct {
	pc         *solver.PathCondition
	store      *mem.Store
	frames     []*sframe
	ocalls     []SinkEvent
	incomplete bool
	// cost counts executed statements (the abstract time model).
	cost int
}

func (st *state) clone() *state {
	frames := make([]*sframe, len(st.frames))
	for i, f := range st.frames {
		frames[i] = f.clone()
	}
	ocalls := make([]SinkEvent, len(st.ocalls))
	copy(ocalls, st.ocalls)
	return &state{
		pc:         st.pc,
		store:      st.store.Clone(),
		frames:     frames,
		ocalls:     ocalls,
		incomplete: st.incomplete,
		cost:       st.cost,
	}
}

func (st *state) frame() *sframe { return st.frames[len(st.frames)-1] }

type varBind struct {
	region mem.Region
	ty     minic.Type
}

type sframe struct {
	fn     *minic.FuncDecl
	id     int
	scopes []map[string]varBind
}

func (f *sframe) clone() *sframe {
	scopes := make([]map[string]varBind, len(f.scopes))
	for i, sc := range f.scopes {
		c := make(map[string]varBind, len(sc))
		for k, v := range sc {
			c[k] = v
		}
		scopes[i] = c
	}
	return &sframe{fn: f.fn, id: f.id, scopes: scopes}
}

func (f *sframe) push() { f.scopes = append(f.scopes, make(map[string]varBind)) }
func (f *sframe) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *sframe) declare(name string, r mem.Region, ty minic.Type) {
	f.scopes[len(f.scopes)-1][name] = varBind{region: r, ty: ty}
}

func (f *sframe) lookup(name string) (varBind, bool) {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if b, ok := f.scopes[i][name]; ok {
			return b, true
		}
	}
	return varBind{}, false
}

func (e *Engine) pushFrame(st *state, fn *minic.FuncDecl) *sframe {
	e.frameSeq++
	fr := &sframe{fn: fn, id: e.frameSeq}
	fr.push()
	st.frames = append(st.frames, fr)
	return fr
}

type ctlKind int

const (
	ctlNext ctlKind = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

type ctl struct {
	kind   ctlKind
	ret    sym.Expr
	retPos minic.Pos
}

var ctlFallthrough = ctl{}

// cont is the continuation invoked with the state after a statement.
type cont func(*state, ctl) error

func (e *Engine) step() error {
	e.steps++
	e.obs.Add("symexec.steps", 1)
	if e.steps > e.opts.maxSteps() {
		e.obs.Add("symexec.truncations.max_steps", 1)
		return e.stop(TruncStepBudget)
	}
	if e.steps%ctxCheckInterval == 0 {
		if err := e.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				e.obs.Add("symexec.truncations.deadline", 1)
				return e.stop(TruncDeadline)
			}
			e.obs.Add("symexec.truncations.cancelled", 1)
			return e.stop(TruncCancelled)
		}
	}
	return nil
}

func (e *Engine) execBlock(st *state, b *minic.Block, k cont) error {
	st.frame().push()
	return e.execSeq(st, b.Stmts, func(end *state, c ctl) error {
		end.frame().pop()
		return k(end, c)
	})
}

func (e *Engine) execSeq(st *state, stmts []minic.Stmt, k cont) error {
	if len(stmts) == 0 {
		return k(st, ctlFallthrough)
	}
	return e.exec(st, stmts[0], func(next *state, c ctl) error {
		if c.kind != ctlNext {
			return k(next, c)
		}
		return e.execSeq(next, stmts[1:], k)
	})
}

func (e *Engine) exec(st *state, s minic.Stmt, k cont) error {
	if err := e.step(); err != nil {
		return err
	}
	st.cost++
	e.snapshot(st, minic.StmtString(s))
	switch v := s.(type) {
	case *minic.Block:
		return e.execBlock(st, v, k)
	case *minic.EmptyStmt:
		return k(st, ctlFallthrough)
	case *minic.DeclStmt:
		for _, d := range v.Decls {
			reg := e.mgr.Var(d.Name+"#"+fmt.Sprint(st.frame().id), st.frame().id)
			st.frame().declare(d.Name, reg, d.Type)
			e.env.Bind(d.Name, reg)
			e.rootDisplay[reg.Key()] = d.Name
			if d.Init != nil {
				val, _, err := e.eval(st, d.Init)
				if err != nil {
					return err
				}
				st.store.Bind(reg, coerceSVal(val, d.Type))
			}
		}
		return k(st, ctlFallthrough)
	case *minic.ExprStmt:
		// A bare call to a user function in statement position is
		// executed with full path sensitivity: forks inside the callee
		// propagate to the caller's continuation. (Calls in expression
		// position fall back to inlineCall's first-path approximation.)
		if call, ok := v.X.(*minic.CallExpr); ok {
			if fn, defined := e.file.Function(call.Fun); defined && fn.Body != nil &&
				!e.opts.OCallFuncs[call.Fun] && !isIntrinsic(e.opts, call.Fun) {
				return e.execCallStmt(st, fn, call, k)
			}
		}
		if _, _, err := e.eval(st, v.X); err != nil {
			return err
		}
		return k(st, ctlFallthrough)
	case *minic.IfStmt:
		return e.execIf(st, v, k)
	case *minic.WhileStmt:
		return e.execLoop(st, v.Cond, nil, v.Body, k)
	case *minic.ForStmt:
		st.frame().push()
		inner := func(end *state, c ctl) error {
			end.frame().pop()
			return k(end, c)
		}
		if v.Init != nil {
			return e.exec(st, v.Init, func(next *state, c ctl) error {
				if c.kind != ctlNext {
					return inner(next, c)
				}
				return e.execLoop(next, v.Cond, v.Post, v.Body, inner)
			})
		}
		return e.execLoop(st, v.Cond, v.Post, v.Body, inner)
	case *minic.DoWhileStmt:
		// do S while (c) ≡ S; while (c) S — with break in the first
		// S exiting the loop.
		return e.exec(st, v.Body, func(next *state, c ctl) error {
			switch c.kind {
			case ctlReturn:
				return k(next, c)
			case ctlBreak:
				return k(next, ctlFallthrough)
			}
			return e.execLoop(next, v.Cond, nil, v.Body, k)
		})
	case *minic.SwitchStmt:
		return e.execSwitch(st, v, k)
	case *minic.ReturnStmt:
		var ret sym.Expr
		if v.X != nil {
			val, _, err := e.eval(st, v.X)
			if err != nil {
				return err
			}
			ret = scalarOf(val)
		}
		return k(st, ctl{kind: ctlReturn, ret: ret, retPos: v.Pos})
	case *minic.BreakStmt:
		return k(st, ctl{kind: ctlBreak})
	case *minic.ContinueStmt:
		return k(st, ctl{kind: ctlContinue})
	}
	return fmt.Errorf("symexec: unknown statement %T", s)
}

func (e *Engine) execIf(st *state, v *minic.IfStmt, k cont) error {
	condVal, _, err := e.eval(st, v.Cond)
	if err != nil {
		return err
	}
	cond := sym.Truth(scalarOf(condVal))
	if c, ok := cond.(sym.IntConst); ok {
		if c.V != 0 {
			return e.exec(st, v.Then, k)
		}
		if v.Else != nil {
			return e.exec(st, v.Else, k)
		}
		return k(st, ctlFallthrough)
	}
	// Fork (PS-TCOND / PS-FCOND).
	e.obs.Add("symexec.forks", 1)
	thenSt := st.clone()
	thenSt.pc = thenSt.pc.And(cond)
	if e.feasible(thenSt.pc) {
		if err := e.exec(thenSt, v.Then, k); err != nil {
			return err
		}
	}
	elseSt := st.clone()
	elseSt.pc = elseSt.pc.And(sym.Negate(cond))
	if e.feasible(elseSt.pc) {
		if v.Else != nil {
			return e.exec(elseSt, v.Else, k)
		}
		return k(elseSt, ctlFallthrough)
	}
	return nil
}

func (e *Engine) feasible(pc *solver.PathCondition) bool {
	if !e.opts.PruneInfeasible {
		return true
	}
	ok := e.sv.Feasible(pc)
	if !ok {
		e.pruned++
		e.obs.Add("symexec.paths.pruned", 1)
	}
	return ok
}

// execLoop handles while (post == nil) and for loops. Concrete conditions
// iterate without forking (bounded by the step budget); symbolic conditions
// fork per iteration up to LoopBound.
func (e *Engine) execLoop(st *state, cond minic.Expr, post minic.Expr, body minic.Stmt, k cont) error {
	var iter func(cur *state, remaining int) error

	afterBody := func(next *state, c ctl, remaining int) error {
		switch c.kind {
		case ctlReturn:
			return k(next, c)
		case ctlBreak:
			return k(next, ctlFallthrough)
		}
		// ctlNext or ctlContinue: run post then loop.
		if post != nil {
			if _, _, err := e.eval(next, post); err != nil {
				return err
			}
		}
		return iter(next, remaining)
	}

	iter = func(cur *state, remaining int) error {
		if err := e.step(); err != nil {
			return err
		}
		if cond == nil {
			// for(;;): only break/return exits; bound it.
			if remaining <= 0 {
				cur.incomplete = true
				e.obs.Add("symexec.loop.bound_hits", 1)
				e.warn("infinite loop cut at bound")
				return k(cur, ctlFallthrough)
			}
			return e.exec(cur, body, func(next *state, c ctl) error {
				return afterBody(next, c, remaining-1)
			})
		}
		condVal, _, err := e.eval(cur, cond)
		if err != nil {
			return err
		}
		truth := sym.Truth(scalarOf(condVal))
		if c, ok := truth.(sym.IntConst); ok {
			if c.V == 0 {
				return k(cur, ctlFallthrough)
			}
			return e.exec(cur, body, func(next *state, cc ctl) error {
				return afterBody(next, cc, remaining)
			})
		}
		// Symbolic condition: fork enter/exit.
		if remaining <= 0 {
			// Bound hit: assume exit, mark incomplete.
			cur.incomplete = true
			cur.pc = cur.pc.And(sym.Negate(truth))
			e.obs.Add("symexec.loop.bound_hits", 1)
			e.warn("symbolic loop cut at bound " + fmt.Sprint(e.opts.loopBound()))
			return k(cur, ctlFallthrough)
		}
		e.obs.Add("symexec.forks", 1)
		enter := cur.clone()
		enter.pc = enter.pc.And(truth)
		if e.feasible(enter.pc) {
			if err := e.exec(enter, body, func(next *state, cc ctl) error {
				return afterBody(next, cc, remaining-1)
			}); err != nil {
				return err
			}
		}
		exit := cur.clone()
		exit.pc = exit.pc.And(sym.Negate(truth))
		if e.feasible(exit.pc) {
			return k(exit, ctlFallthrough)
		}
		return nil
	}
	return iter(st, e.opts.loopBound())
}

func (e *Engine) warn(msg string) {
	for _, w := range e.res.Warnings {
		if w == msg {
			return
		}
	}
	e.res.Warnings = append(e.res.Warnings, msg)
	e.obs.Event("symexec.warning", obs.F("msg", msg))
}

// scalarOf extracts a scalar expression from an SVal; locations degrade to
// an opaque non-secret constant (pointer values are not secrets).
func scalarOf(v mem.SVal) sym.Expr {
	switch s := v.(type) {
	case mem.Scalar:
		return s.E
	default:
		return sym.IntConst{V: 1}
	}
}

// coerceSVal applies C narrowing when the declared type is integral and the
// value folded to a float constant.
func coerceSVal(v mem.SVal, ty minic.Type) mem.SVal {
	sc, ok := v.(mem.Scalar)
	if !ok {
		return v
	}
	if b, isBasic := ty.(minic.Basic); isBasic && b.IsInteger() {
		if f, isF := sc.E.(sym.FloatConst); isF {
			return mem.Scalar{E: sym.IntConst{V: int32(f.V)}}
		}
	}
	return sc
}

// constInit folds a literal (optionally negated) global initializer.
func constInit(e minic.Expr) (sym.Expr, bool) {
	switch v := e.(type) {
	case *minic.IntLitExpr:
		return sym.IntConst{V: int32(v.V)}, true
	case *minic.FloatLitExpr:
		return sym.FloatConst{V: v.V}, true
	case *minic.UnExpr:
		if v.Op != sym.OpNeg {
			return nil, false
		}
		inner, ok := constInit(v.X)
		if !ok {
			return nil, false
		}
		return sym.NewUnary(sym.OpNeg, inner), true
	default:
		return nil, false
	}
}

// execSwitch symbolically executes a C switch. A concrete tag with concrete
// case values selects the entry statically; a symbolic tag forks one state
// per case (with the preceding cases excluded from π) plus a default state.
// Fallthrough is honored: from the entry case, statements of all later
// cases run until a break.
func (e *Engine) execSwitch(st *state, v *minic.SwitchStmt, k cont) error {
	tagVal, _, err := e.eval(st, v.Tag)
	if err != nil {
		return err
	}
	tag := scalarOf(tagVal)

	// runFrom executes case bodies from entry onward with switch-scoped
	// break handling.
	runFrom := func(cur *state, entry int, kk cont) error {
		var stmts []minic.Stmt
		for i := entry; i < len(v.Cases); i++ {
			stmts = append(stmts, v.Cases[i].Body...)
		}
		return e.execSeq(cur, stmts, func(end *state, c ctl) error {
			if c.kind == ctlBreak {
				return kk(end, ctlFallthrough)
			}
			return kk(end, c)
		})
	}

	// Evaluate case values (side-effect-free constants in C).
	caseVals := make([]sym.Expr, len(v.Cases))
	defaultIdx := -1
	for i, c := range v.Cases {
		if c.IsDefault {
			defaultIdx = i
			continue
		}
		cv, _, err := e.eval(st, c.Value)
		if err != nil {
			return err
		}
		caseVals[i] = scalarOf(cv)
	}

	if tc, concrete := tag.(sym.IntConst); concrete {
		allConcrete := true
		entry := -1
		for i, c := range v.Cases {
			if c.IsDefault {
				continue
			}
			cc, ok := caseVals[i].(sym.IntConst)
			if !ok {
				allConcrete = false
				break
			}
			if cc.V == tc.V {
				entry = i
				break
			}
		}
		if allConcrete {
			if entry < 0 {
				entry = defaultIdx
			}
			if entry < 0 {
				return k(st, ctlFallthrough)
			}
			return runFrom(st, entry, k)
		}
	}

	// Symbolic tag: fork per case.
	e.obs.Add("symexec.forks", 1)
	var excluded []sym.Expr
	for i, c := range v.Cases {
		if c.IsDefault {
			continue
		}
		match := sym.NewBinary(sym.OpEq, tag, caseVals[i])
		branch := st.clone()
		branch.pc = branch.pc.And(match)
		for _, ex := range excluded {
			branch.pc = branch.pc.And(sym.Negate(ex))
		}
		if e.feasible(branch.pc) {
			if err := runFrom(branch, i, k); err != nil {
				return err
			}
		}
		excluded = append(excluded, match)
	}
	// No-match state: default case, or fall past the switch.
	rest := st.clone()
	for _, ex := range excluded {
		rest.pc = rest.pc.And(sym.Negate(ex))
	}
	if !e.feasible(rest.pc) {
		return nil
	}
	if defaultIdx >= 0 {
		return runFrom(rest, defaultIdx, k)
	}
	return k(rest, ctlFallthrough)
}
