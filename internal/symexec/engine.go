package symexec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"privacyscope/internal/ir"
	"privacyscope/internal/mem"
	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/taint"
)

// Engine errors.
var (
	ErrNoSuchFunc = errors.New("symexec: no such function")
)

// ctxCheckInterval is how many steps may pass between cooperative
// context checks: a cancelled or expired context stops the exploration
// within this many statement evaluations.
const ctxCheckInterval = 32

// Engine symbolically executes analysis-IR functions (lowered from MiniC or
// PRIML — see internal/ir). Create one per analysis run. A single run may
// explore paths on several worker goroutines when Options.PathWorkers > 1;
// the engine's shared structures are synchronized internally, but the
// Engine itself must not be shared across concurrent AnalyzeFunction calls.
type Engine struct {
	prog    *ir.Program
	opts    Options
	mgr     *mem.Manager
	builder *sym.Builder
	sv      *solver.Solver
	itn     *sym.Interner // hash-consing arena; nil with NoIntern
	// intern.* counter values already flushed to obs (see AnalyzeFunction).
	internHits, internMisses int64

	// inputSyms memoizes conjured input values per region key so every
	// path sees the same symbol for the same memory.
	inputSyms map[string]mem.SVal
	// secretRoots marks region roots whose unbound elements must conjure
	// *secret* symbols (SymRegions of [in] params and re-symbolized
	// decrypt destinations).
	secretRoots map[string]bool
	// rootDisplay maps region-root keys to source-level display names.
	rootDisplay map[string]string
	// outRoots maps [out]-parameter root keys to parameter names. Written
	// only while binding entry parameters, read-only during exploration.
	outRoots map[string]string
	// mapMu guards inputSyms, secretRoots, rootDisplay and
	// res.SecretSymbols against concurrent path workers. Lock order:
	// resMu before mapMu, never the reverse.
	mapMu sync.Mutex

	frameSeq int64
	steps    int64
	states   int64
	pruned   int64
	// regionPad counts the memory regions summarized-away callee bodies
	// would have allocated, so Result.Regions matches inline mode.
	regionPad int64
	res       *Result
	env       *mem.Env
	obs       obs.Observer

	// resMu guards res.Paths, the warning log and the path budget.
	resMu    sync.Mutex
	warns    []warnEntry
	warnIdx  map[string]int
	warnSeq  int64
	truncMu  sync.Mutex
	stopFlag atomic.Bool

	// sem is the path-worker token pool (capacity PathWorkers-1); nil when
	// exploration is sequential.
	sem chan struct{}

	// ctx is the run's cancellation context; trunc records why the
	// exploration stopped early (TruncNone while it is still exhaustive).
	ctx   context.Context
	trunc TruncReason
}

// New returns an engine over the MiniC file, lowering it to the analysis IR
// internally.
func New(file *minic.File, opts Options) *Engine {
	return NewIR(ir.LowerMiniC(file), opts)
}

// NewIR returns an engine over an already-lowered program. Front ends other
// than MiniC (the PRIML adapter) lower themselves and enter here.
func NewIR(prog *ir.Program, opts Options) *Engine {
	var alloc taint.Allocator
	o := obs.Or(opts.Obs)
	var itn *sym.Interner
	if !opts.NoIntern {
		itn = sym.NewInterner()
	}
	sv := solver.NewObserved(o)
	sv.SetInterner(itn)
	return &Engine{
		prog:        prog,
		opts:        opts,
		mgr:         mem.NewManager(),
		builder:     sym.NewBuilder(&alloc),
		sv:          sv,
		itn:         itn,
		inputSyms:   make(map[string]mem.SVal),
		secretRoots: make(map[string]bool),
		rootDisplay: make(map[string]string),
		outRoots:    make(map[string]string),
		warnIdx:     make(map[string]int),
		env:         mem.NewEnv(),
		obs:         o,
	}
}

// Builder exposes the engine's symbol builder (the checker needs it for
// witness models).
func (e *Engine) Builder() *sym.Builder { return e.builder }

// AnalyzeFunction explores every path of the named entry point under the
// given parameter classification. Exploration is fail-soft: when the path
// or step budget is exhausted, or ctx is cancelled or reaches its deadline,
// the engine stops and returns the paths completed so far with
// Result.Coverage recording the truncation — not an error. Errors are
// reserved for analysis failures (unknown entry point, semantic errors).
func (e *Engine) AnalyzeFunction(ctx context.Context, name string, params []ParamSpec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	fn, ok := e.prog.Func(name)
	if !ok || fn.Body == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFunc, name)
	}
	classes := make(map[string]ParamClass, len(params))
	for _, p := range params {
		classes[p.Name] = p.Class
	}

	e.res = &Result{
		Function:      name,
		Builder:       e.builder,
		SecretSymbols: make(map[string]*sym.Symbol),
	}
	if e.opts.TrackTrace {
		e.res.Trace = NewTrace()
	}
	e.setupWorkers(name)

	st := &state{
		pc:    solver.True(),
		store: mem.NewStore(),
	}
	// Seed globals with constant initializers; globals with dynamic or
	// absent initializers stay symbolic (conjured on first read).
	if e.prog.Module != nil {
		for _, g := range e.prog.Module.Globals {
			if c, ok := constInit(g.Init); ok {
				reg := e.mgr.Var("::"+g.Name, 0)
				e.rootDisplay[reg.Key()] = g.Name
				st.store.Bind(reg, coerceSVal(mem.Scalar{E: c}, g.Type))
			}
		}
	}
	fr := e.pushFrame(st, fn)
	for _, p := range fn.Params {
		cls, ok := classes[p.Name]
		if !ok {
			cls = ParamPublic
		}
		if err := e.bindParam(st, fr, p, cls); err != nil {
			return nil, err
		}
	}
	e.snapshot(st, "entry "+name)

	err := e.execBlock(st, fn.Body, func(end *state, c ctl) error {
		ret := c.ret
		if c.kind != ctlReturn {
			ret = nil
		}
		return e.completePath(end, ret, c.retPos)
	})
	if err != nil && !errors.Is(err, errStopExploration) {
		return nil, err
	}
	// Deterministic result order regardless of worker interleaving: paths
	// and warnings sort by their fork-choice keys, which reproduces the
	// sequential depth-first order exactly.
	sort.SliceStable(e.res.Paths, func(i, j int) bool {
		return bytes.Compare(e.res.Paths[i].key, e.res.Paths[j].key) < 0
	})
	e.finishWarnings()
	if e.trunc != TruncNone {
		msg := "exploration truncated: " + string(e.trunc)
		e.res.Warnings = append(e.res.Warnings, msg)
		e.obs.Event("symexec.warning", obs.F("msg", msg))
	}
	incomplete := 0
	for _, p := range e.res.Paths {
		if p.Incomplete {
			incomplete++
		}
	}
	e.res.States = int(atomic.LoadInt64(&e.states))
	e.res.Coverage = Coverage{
		CompletedPaths:  len(e.res.Paths),
		IncompletePaths: incomplete,
		PrunedPaths:     int(atomic.LoadInt64(&e.pruned)),
		StepsUsed:       int(atomic.LoadInt64(&e.steps)),
		Truncated:       e.trunc != TruncNone,
		Reason:          e.trunc,
	}
	e.res.Regions = e.mgr.RegionCount() + int(atomic.LoadInt64(&e.regionPad))
	if e.res.Trace != nil {
		e.res.TraceTruncated = e.res.Trace.Dropped()
	}
	if e.itn != nil {
		// Flush arena deltas so a (hypothetical) second AnalyzeFunction on
		// the same engine never double-counts.
		h, m, sz := e.itn.Stats()
		e.obs.Add("intern.hits", h-e.internHits)
		e.obs.Add("intern.misses", m-e.internMisses)
		e.internHits, e.internMisses = h, m
		e.obs.Observe("intern.size", sz)
	}
	e.obs.Event("symexec.done",
		obs.F("function", name),
		obs.F("paths", fmt.Sprint(len(e.res.Paths))),
		obs.F("states", fmt.Sprint(e.res.States)),
		obs.F("truncated", string(e.trunc)))
	return e.res, nil
}

// setupWorkers decides the effective path-worker count for this entry point
// and allocates the token pool. Parallel exploration is declined when a
// feature needs strict sequential path order: Table-IV trace recording,
// front-end note hooks (the PRIML adapter's hm protocol is cross-path
// order-dependent), and decrypt intrinsics (they re-symbolize shared
// secret-root state mid-path).
func (e *Engine) setupWorkers(entry string) {
	workers := e.opts.PathWorkers
	if workers <= 1 {
		return
	}
	if e.opts.TrackTrace || e.opts.NoteHook != nil {
		return
	}
	reach := e.prog.ReachableCalls(entry)
	names := make([]string, 0, len(reach))
	for n := range reach {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, isDecrypt := e.opts.DecryptFuncs[n]; isDecrypt {
			e.warn(nil, "path workers disabled: decrypt intrinsic "+n+" re-symbolizes shared memory")
			return
		}
	}
	e.sem = make(chan struct{}, workers-1)
}

// bindParam sets up one entry parameter per its EDL class.
func (e *Engine) bindParam(st *state, fr *sframe, p *minic.VarDecl, cls ParamClass) error {
	reg := e.mgr.Var(p.Name, fr.id)
	fr.declare(p.Name, reg, p.Type)
	e.env.Bind(p.Name, reg)

	if _, isPtr := p.Type.(minic.Pointer); isPtr {
		secret := cls == ParamSecret || cls == ParamInOut
		pointee := e.builder.FreshPublic(p.Name + "_blk")
		blk := e.mgr.SymBlock(pointee, p.Name, secret)
		e.rootDisplay[blk.Key()] = p.Name
		if secret {
			e.secretRoots[blk.Key()] = true
		}
		if cls == ParamOut || cls == ParamInOut {
			e.outRoots[blk.Key()] = p.Name
		}
		st.store.Bind(reg, mem.Loc{R: blk})
		return nil
	}
	// Scalar parameter.
	var val sym.Expr
	if cls == ParamSecret || cls == ParamInOut {
		s := e.builder.FreshSecret(p.Name)
		e.res.SecretSymbols[p.Name] = s
		val = s
	} else {
		val = e.builder.FreshPublic(p.Name)
	}
	st.store.Bind(reg, mem.Scalar{E: val})
	return nil
}

// completePath records one finished path's observable outcome.
func (e *Engine) completePath(st *state, ret sym.Expr, retPos minic.Pos) error {
	e.resMu.Lock()
	if len(e.res.Paths) >= e.opts.maxPaths() {
		e.resMu.Unlock()
		e.obs.Add("symexec.truncations.max_paths", 1)
		return e.stop(TruncPathBudget)
	}
	e.obs.Add("symexec.paths.completed", 1)
	if st.incomplete {
		e.obs.Add("symexec.paths.incomplete", 1)
	}
	e.obs.Observe("symexec.path.depth", int64(st.pc.Len()))
	e.obs.Observe("symexec.path.cost", int64(st.cost))
	pr := &PathResult{
		PC:             st.pc,
		Return:         ret,
		ReturnPos:      retPos,
		Ocalls:         st.ocalls,
		Incomplete:     st.incomplete,
		Cost:           st.cost,
		Inits:          st.inits,
		SecretBranches: st.branches,
		SecretAccesses: st.accesses,
		key:            st.key,
	}
	for _, b := range st.store.Bindings() {
		rootKey := mem.Root(b.Region).Key()
		param, isOut := e.outRoots[rootKey]
		if !isOut || b.Region == mem.Root(b.Region) {
			continue
		}
		sc, isScalar := b.Val.(mem.Scalar)
		if !isScalar {
			continue
		}
		pr.Outs = append(pr.Outs, OutWrite{
			Param:   param,
			Region:  b.Region,
			Display: e.displayName(b.Region),
			Value:   sc.E,
		})
	}
	e.res.Paths = append(e.res.Paths, pr)
	e.resMu.Unlock()
	e.snapshot(st, "path end")
	return nil
}

// state is one exploded node: π, σ, call stack and per-path observations.
type state struct {
	pc         *solver.PathCondition
	store      *mem.Store
	frames     []*sframe
	ocalls     []SinkEvent
	incomplete bool
	// inits, branches and accesses are the per-path detector-pack event
	// logs (empty unless the corresponding Options gate is on); evSeq is
	// the shared ocall/init sequence counter.
	inits    []LifecycleEvent
	branches []BranchEvent
	accesses []AccessEvent
	evSeq    int
	// cost counts executed statements (the abstract time model).
	cost int
	// key is the fork-choice sequence that reached this state (two
	// big-endian bytes per fork). Lexicographic order over keys equals the
	// sequential depth-first exploration order, which is what makes
	// parallel results deterministically sortable.
	key []byte
	// seqLock > 0 pins this state's subtree to the requesting worker
	// (inlineCall's first-path adoption is order-dependent).
	seqLock int
}

func (st *state) clone() *state {
	frames := make([]*sframe, len(st.frames))
	for i, f := range st.frames {
		frames[i] = f.clone()
	}
	ocalls := make([]SinkEvent, len(st.ocalls))
	copy(ocalls, st.ocalls)
	key := make([]byte, len(st.key))
	copy(key, st.key)
	c := &state{
		pc:         st.pc,
		store:      st.store.Clone(),
		frames:     frames,
		ocalls:     ocalls,
		incomplete: st.incomplete,
		cost:       st.cost,
		key:        key,
		seqLock:    st.seqLock,
		evSeq:      st.evSeq,
	}
	if len(st.inits) > 0 {
		c.inits = append([]LifecycleEvent(nil), st.inits...)
	}
	if len(st.branches) > 0 {
		c.branches = append([]BranchEvent(nil), st.branches...)
	}
	if len(st.accesses) > 0 {
		c.accesses = append([]AccessEvent(nil), st.accesses...)
	}
	return c
}

func (st *state) frame() *sframe { return st.frames[len(st.frames)-1] }

type varBind struct {
	region mem.Region
	ty     minic.Type
}

type sframe struct {
	fn     *ir.Func
	id     int
	scopes []map[string]varBind
}

func (f *sframe) clone() *sframe {
	scopes := make([]map[string]varBind, len(f.scopes))
	for i, sc := range f.scopes {
		c := make(map[string]varBind, len(sc))
		for k, v := range sc {
			c[k] = v
		}
		scopes[i] = c
	}
	return &sframe{fn: f.fn, id: f.id, scopes: scopes}
}

func (f *sframe) push() { f.scopes = append(f.scopes, make(map[string]varBind)) }
func (f *sframe) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *sframe) declare(name string, r mem.Region, ty minic.Type) {
	f.scopes[len(f.scopes)-1][name] = varBind{region: r, ty: ty}
}

func (f *sframe) lookup(name string) (varBind, bool) {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if b, ok := f.scopes[i][name]; ok {
			return b, true
		}
	}
	return varBind{}, false
}

func (e *Engine) pushFrame(st *state, fn *ir.Func) *sframe {
	fr := &sframe{fn: fn, id: int(atomic.AddInt64(&e.frameSeq, 1))}
	fr.push()
	st.frames = append(st.frames, fr)
	return fr
}

type ctlKind int

const (
	ctlNext ctlKind = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

type ctl struct {
	kind   ctlKind
	ret    sym.Expr
	retPos minic.Pos
}

var ctlFallthrough = ctl{}

// cont is the continuation invoked with the state after a statement.
type cont func(*state, ctl) error

func (e *Engine) step() error {
	if e.stopFlag.Load() {
		return errStopExploration
	}
	n := atomic.AddInt64(&e.steps, 1)
	e.obs.Add("symexec.steps", 1)
	if int(n) > e.opts.maxSteps() {
		e.obs.Add("symexec.truncations.max_steps", 1)
		return e.stop(TruncStepBudget)
	}
	if n%ctxCheckInterval == 0 {
		if err := e.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				e.obs.Add("symexec.truncations.deadline", 1)
				return e.stop(TruncDeadline)
			}
			e.obs.Add("symexec.truncations.cancelled", 1)
			return e.stop(TruncCancelled)
		}
	}
	return nil
}

func (e *Engine) execBlock(st *state, b *ir.BlockOp, k cont) error {
	st.frame().push()
	return e.execSeq(st, b.Ops, func(end *state, c ctl) error {
		end.frame().pop()
		return k(end, c)
	})
}

func (e *Engine) execSeq(st *state, ops []ir.Op, k cont) error {
	if len(ops) == 0 {
		return k(st, ctlFallthrough)
	}
	return e.exec(st, ops[0], func(next *state, c ctl) error {
		if c.kind != ctlNext {
			return k(next, c)
		}
		return e.execSeq(next, ops[1:], k)
	})
}

func (e *Engine) exec(st *state, op ir.Op, k cont) error {
	// Notes are front-end markers, not statements: no step, no cost, no
	// snapshot — the hook observes state, it does not advance it.
	if n, isNote := op.(*ir.NoteOp); isNote {
		if e.opts.NoteHook != nil {
			e.opts.NoteHook(StateView{e: e, st: st}, n.Data)
		}
		return k(st, ctlFallthrough)
	}
	if err := e.step(); err != nil {
		return err
	}
	st.cost++
	e.snapshot(st, op.Display())
	switch v := op.(type) {
	case *ir.BlockOp:
		return e.execBlock(st, v, k)
	case *ir.EmptyOp:
		return k(st, ctlFallthrough)
	case *ir.DeclOp:
		for _, d := range v.Decls {
			reg := e.mgr.Var(d.Name+"#"+fmt.Sprint(st.frame().id), st.frame().id)
			st.frame().declare(d.Name, reg, d.Type)
			e.env.Bind(d.Name, reg)
			e.mapMu.Lock()
			e.rootDisplay[reg.Key()] = d.Name
			e.mapMu.Unlock()
			if d.Init != nil {
				val, _, err := e.eval(st, d.Init)
				if err != nil {
					return err
				}
				st.store.Bind(reg, coerceSVal(val, d.Type))
			}
		}
		return k(st, ctlFallthrough)
	case *ir.ExprOp:
		// A bare call to a user function in statement position is
		// executed with full path sensitivity: forks inside the callee
		// propagate to the caller's continuation. (Calls in expression
		// position fall back to inlineCall's first-path approximation.)
		if call, ok := v.X.(*minic.CallExpr); ok {
			if fn, defined := e.prog.Func(call.Fun); defined && fn.Body != nil &&
				!e.opts.OCallFuncs[call.Fun] && !isIntrinsic(e.opts, call.Fun) {
				return e.execCallStmt(st, fn, call, k)
			}
		}
		if _, _, err := e.eval(st, v.X); err != nil {
			return err
		}
		return k(st, ctlFallthrough)
	case *ir.IfOp:
		return e.execIf(st, v, k)
	case *ir.LoopOp:
		if v.PostTest {
			// do S while (c) ≡ S; while (c) S — with break in the first
			// S exiting the loop.
			return e.exec(st, v.Body, func(next *state, c ctl) error {
				switch c.kind {
				case ctlReturn:
					return k(next, c)
				case ctlBreak:
					return k(next, ctlFallthrough)
				}
				return e.execLoop(next, v.Position(), v.Cond, nil, v.Body, k)
			})
		}
		if !v.Scoped {
			return e.execLoop(st, v.Position(), v.Cond, nil, v.Body, k)
		}
		st.frame().push()
		inner := func(end *state, c ctl) error {
			end.frame().pop()
			return k(end, c)
		}
		if v.Init != nil {
			return e.exec(st, v.Init, func(next *state, c ctl) error {
				if c.kind != ctlNext {
					return inner(next, c)
				}
				return e.execLoop(next, v.Position(), v.Cond, v.Post, v.Body, inner)
			})
		}
		return e.execLoop(st, v.Position(), v.Cond, v.Post, v.Body, inner)
	case *ir.SwitchOp:
		return e.execSwitch(st, v, k)
	case *ir.ReturnOp:
		var ret sym.Expr
		if v.X != nil {
			val, _, err := e.eval(st, v.X)
			if err != nil {
				return err
			}
			ret = scalarOf(val)
		}
		return k(st, ctl{kind: ctlReturn, ret: ret, retPos: v.Pos})
	case *ir.BreakOp:
		return k(st, ctl{kind: ctlBreak})
	case *ir.ContinueOp:
		return k(st, ctl{kind: ctlContinue})
	}
	return fmt.Errorf("symexec: unknown op %T", op)
}

// branchCase is one arm of a fork: a pre-cloned state (path condition
// already extended) and the work to run on it.
type branchCase struct {
	st  *state
	run func(*state) error
}

// childKey extends a fork-choice key by one choice (two big-endian bytes).
func childKey(parent []byte, choice int) []byte {
	k := make([]byte, len(parent)+2)
	copy(k, parent)
	k[len(parent)] = byte(choice >> 8)
	k[len(parent)+1] = byte(choice)
	return k
}

// runBranches explores the arms of a fork. Sequentially it preserves the
// engine's historical depth-first order exactly. With a worker pool, arms
// past the first are offloaded to free workers (non-blocking token
// acquisition — a full pool degrades to inline execution, so the pool can
// never deadlock); the first arm always runs on the requesting worker.
// Worker panics are captured and re-raised on the requesting goroutine
// after all arms join, so a panicking path degrades the whole analysis to
// the facade's ErrorReport instead of killing the process or leaking
// goroutines.
func (e *Engine) runBranches(parent *state, branches []branchCase) error {
	for i := range branches {
		branches[i].st.key = childKey(parent.key, i)
	}
	if e.sem == nil || parent.seqLock > 0 {
		for _, b := range branches {
			if err := b.run(b.st); err != nil {
				return err
			}
		}
		return nil
	}
	n := len(branches)
	errs := make([]error, n)
	pans := make([]any, n)
	inline := make([]bool, n)
	inline[0] = true
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		select {
		case e.sem <- struct{}{}:
		default:
			inline[i] = true
			continue
		}
		wg.Add(1)
		e.obs.Add("symexec.workers.spawned", 1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-e.sem }()
			// One span per offloaded subtree (never per statement), so a
			// trace shows where the pool actually ran work. It starts here
			// and ends on this worker goroutine — the cross-goroutine case
			// the Tracer's handle-carried parent links exist for.
			sp := e.obs.StartSpan("symexec/worker")
			sp.Annotate(obs.F("branch", fmt.Sprint(i)))
			defer sp.End()
			defer func() {
				if p := recover(); p != nil {
					pans[i] = p
					e.obs.Add("symexec.workers.panics", 1)
				}
			}()
			errs[i] = branches[i].run(branches[i].st)
		}(i)
	}
	for i := 0; i < n; i++ {
		if !inline[i] {
			continue
		}
		e.obs.Add("symexec.workers.inline", 1)
		func(i int) {
			defer func() {
				if p := recover(); p != nil {
					pans[i] = p
					e.obs.Add("symexec.workers.panics", 1)
				}
			}()
			errs[i] = branches[i].run(branches[i].st)
		}(i)
	}
	wg.Wait()
	for _, p := range pans {
		if p != nil {
			panic(p)
		}
	}
	// Prefer a real semantic error (lowest branch index) over the
	// truncation sentinel so failures surface deterministically.
	for _, err := range errs {
		if err != nil && !errors.Is(err, errStopExploration) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// noteBranch records a fork on a secret-tainted condition on the parent
// state, *before* cloning, so both successors carry the event: the branch
// outcome is observable in the access trace whichever way it goes. Gated on
// RecordSecretAccess; no-op (and allocation-free) otherwise.
func (e *Engine) noteBranch(st *state, pos minic.Pos, cond sym.Expr) {
	if !e.opts.RecordSecretAccess {
		return
	}
	if sym.TaintOf(cond).IsBottom() {
		return
	}
	st.branches = append(st.branches, BranchEvent{Pos: pos, Cond: cond})
	e.obs.Add("symexec.events.secret_branches", 1)
}

func (e *Engine) execIf(st *state, v *ir.IfOp, k cont) error {
	condVal, _, err := e.eval(st, v.Cond)
	if err != nil {
		return err
	}
	cond := e.itn.Truth(scalarOf(condVal))
	if c, ok := cond.(sym.IntConst); ok {
		if c.V != 0 {
			return e.exec(st, v.Then, k)
		}
		if v.Else != nil {
			return e.exec(st, v.Else, k)
		}
		return k(st, ctlFallthrough)
	}
	// Fork (PS-TCOND / PS-FCOND).
	e.noteBranch(st, v.Position(), cond)
	e.obs.Add("symexec.forks", 1)
	thenSt := st.clone()
	thenSt.pc = thenSt.pc.And(cond)
	elseSt := st.clone()
	elseSt.pc = elseSt.pc.And(e.itn.Negate(cond))
	return e.runBranches(st, []branchCase{
		{st: thenSt, run: func(s *state) error {
			if !e.feasible(s.pc) {
				return nil
			}
			return e.exec(s, v.Then, k)
		}},
		{st: elseSt, run: func(s *state) error {
			if !e.feasible(s.pc) {
				return nil
			}
			if v.Else != nil {
				return e.exec(s, v.Else, k)
			}
			return k(s, ctlFallthrough)
		}},
	})
}

func (e *Engine) feasible(pc *solver.PathCondition) bool {
	if !e.opts.PruneInfeasible {
		return true
	}
	ok := e.sv.Feasible(pc)
	if !ok {
		atomic.AddInt64(&e.pruned, 1)
		e.obs.Add("symexec.paths.pruned", 1)
	}
	return ok
}

// execLoop handles while (post == nil) and for loops. Concrete conditions
// iterate without forking (bounded by the step budget); symbolic conditions
// fork per iteration up to LoopBound.
func (e *Engine) execLoop(st *state, pos minic.Pos, cond minic.Expr, post minic.Expr, body ir.Op, k cont) error {
	var iter func(cur *state, remaining int) error

	afterBody := func(next *state, c ctl, remaining int) error {
		switch c.kind {
		case ctlReturn:
			return k(next, c)
		case ctlBreak:
			return k(next, ctlFallthrough)
		}
		// ctlNext or ctlContinue: run post then loop.
		if post != nil {
			if _, _, err := e.eval(next, post); err != nil {
				return err
			}
		}
		return iter(next, remaining)
	}

	iter = func(cur *state, remaining int) error {
		if err := e.step(); err != nil {
			return err
		}
		if cond == nil {
			// for(;;): only break/return exits; bound it.
			if remaining <= 0 {
				cur.incomplete = true
				e.obs.Add("symexec.loop.bound_hits", 1)
				e.warn(cur, "infinite loop cut at bound")
				return k(cur, ctlFallthrough)
			}
			return e.exec(cur, body, func(next *state, c ctl) error {
				return afterBody(next, c, remaining-1)
			})
		}
		condVal, _, err := e.eval(cur, cond)
		if err != nil {
			return err
		}
		truth := e.itn.Truth(scalarOf(condVal))
		if c, ok := truth.(sym.IntConst); ok {
			if c.V == 0 {
				return k(cur, ctlFallthrough)
			}
			return e.exec(cur, body, func(next *state, cc ctl) error {
				return afterBody(next, cc, remaining)
			})
		}
		// Symbolic condition: fork enter/exit.
		if remaining <= 0 {
			// Bound hit: assume exit, mark incomplete.
			cur.incomplete = true
			cur.pc = cur.pc.And(e.itn.Negate(truth))
			e.obs.Add("symexec.loop.bound_hits", 1)
			e.warn(cur, "symbolic loop cut at bound "+fmt.Sprint(e.opts.loopBound()))
			return k(cur, ctlFallthrough)
		}
		e.noteBranch(cur, pos, truth)
		e.obs.Add("symexec.forks", 1)
		enter := cur.clone()
		enter.pc = enter.pc.And(truth)
		exit := cur.clone()
		exit.pc = exit.pc.And(e.itn.Negate(truth))
		return e.runBranches(cur, []branchCase{
			{st: enter, run: func(s *state) error {
				if !e.feasible(s.pc) {
					return nil
				}
				return e.exec(s, body, func(next *state, cc ctl) error {
					return afterBody(next, cc, remaining-1)
				})
			}},
			{st: exit, run: func(s *state) error {
				if !e.feasible(s.pc) {
					return nil
				}
				return k(s, ctlFallthrough)
			}},
		})
	}
	return iter(st, e.opts.loopBound())
}

// warnEntry is one deduplicated warning with the fork-choice key and global
// sequence of its first (depth-first-least) emission, for deterministic
// ordering under parallel exploration.
type warnEntry struct {
	key   []byte
	order int64
	msg   string
}

// warn records a soft diagnostic. st may be nil for engine-level warnings
// emitted outside any path.
func (e *Engine) warn(st *state, msg string) {
	var key []byte
	if st != nil {
		key = st.key
	}
	e.resMu.Lock()
	if i, ok := e.warnIdx[msg]; ok {
		w := &e.warns[i]
		if bytes.Compare(key, w.key) < 0 {
			w.key = append([]byte(nil), key...)
			w.order = e.warnSeq
		}
	} else {
		e.warnIdx[msg] = len(e.warns)
		e.warns = append(e.warns, warnEntry{
			key:   append([]byte(nil), key...),
			order: e.warnSeq,
			msg:   msg,
		})
		e.obs.Event("symexec.warning", obs.F("msg", msg))
	}
	e.warnSeq++
	e.resMu.Unlock()
}

// finishWarnings materializes Result.Warnings in deterministic order: by
// fork-choice key, then by emission sequence — which is exactly the
// sequential emission order when exploration ran on one worker.
func (e *Engine) finishWarnings() {
	sort.SliceStable(e.warns, func(i, j int) bool {
		if c := bytes.Compare(e.warns[i].key, e.warns[j].key); c != 0 {
			return c < 0
		}
		return e.warns[i].order < e.warns[j].order
	})
	for _, w := range e.warns {
		e.res.Warnings = append(e.res.Warnings, w.msg)
	}
}

// scalarOf extracts a scalar expression from an SVal; locations degrade to
// an opaque non-secret constant (pointer values are not secrets).
func scalarOf(v mem.SVal) sym.Expr {
	switch s := v.(type) {
	case mem.Scalar:
		return s.E
	default:
		return sym.IntConst{V: 1}
	}
}

// coerceSVal applies C narrowing when the declared type is integral and the
// value folded to a float constant.
func coerceSVal(v mem.SVal, ty minic.Type) mem.SVal {
	sc, ok := v.(mem.Scalar)
	if !ok {
		return v
	}
	if b, isBasic := ty.(minic.Basic); isBasic && b.IsInteger() {
		if f, isF := sc.E.(sym.FloatConst); isF {
			return mem.Scalar{E: sym.IntConst{V: int32(f.V)}}
		}
	}
	return sc
}

// constInit folds a literal (optionally negated) global initializer.
func constInit(e minic.Expr) (sym.Expr, bool) {
	switch v := e.(type) {
	case *minic.IntLitExpr:
		return sym.IntConst{V: int32(v.V)}, true
	case *minic.FloatLitExpr:
		return sym.FloatConst{V: v.V}, true
	case *minic.UnExpr:
		if v.Op != sym.OpNeg {
			return nil, false
		}
		inner, ok := constInit(v.X)
		if !ok {
			return nil, false
		}
		return sym.NewUnary(sym.OpNeg, inner), true
	default:
		return nil, false
	}
}

// execSwitch symbolically executes a C switch. A concrete tag with concrete
// case values selects the entry statically; a symbolic tag forks one state
// per case (with the preceding cases excluded from π) plus a default state.
// Fallthrough is honored: from the entry case, statements of all later
// cases run until a break.
func (e *Engine) execSwitch(st *state, v *ir.SwitchOp, k cont) error {
	tagVal, _, err := e.eval(st, v.Tag)
	if err != nil {
		return err
	}
	tag := scalarOf(tagVal)

	// runFrom executes case bodies from entry onward with switch-scoped
	// break handling.
	runFrom := func(cur *state, entry int, kk cont) error {
		var ops []ir.Op
		for i := entry; i < len(v.Cases); i++ {
			ops = append(ops, v.Cases[i].Body...)
		}
		return e.execSeq(cur, ops, func(end *state, c ctl) error {
			if c.kind == ctlBreak {
				return kk(end, ctlFallthrough)
			}
			return kk(end, c)
		})
	}

	// Evaluate case values (side-effect-free constants in C).
	caseVals := make([]sym.Expr, len(v.Cases))
	defaultIdx := -1
	for i, c := range v.Cases {
		if c.IsDefault {
			defaultIdx = i
			continue
		}
		cv, _, err := e.eval(st, c.Value)
		if err != nil {
			return err
		}
		caseVals[i] = scalarOf(cv)
	}

	if tc, concrete := tag.(sym.IntConst); concrete {
		allConcrete := true
		entry := -1
		for i, c := range v.Cases {
			if c.IsDefault {
				continue
			}
			cc, ok := caseVals[i].(sym.IntConst)
			if !ok {
				allConcrete = false
				break
			}
			if cc.V == tc.V {
				entry = i
				break
			}
		}
		if allConcrete {
			if entry < 0 {
				entry = defaultIdx
			}
			if entry < 0 {
				return k(st, ctlFallthrough)
			}
			return runFrom(st, entry, k)
		}
	}

	// Symbolic tag: fork per case.
	e.noteBranch(st, v.Position(), tag)
	e.obs.Add("symexec.forks", 1)
	var excluded []sym.Expr
	var branches []branchCase
	for i, c := range v.Cases {
		if c.IsDefault {
			continue
		}
		match := e.itn.NewBinary(sym.OpEq, tag, caseVals[i])
		branch := st.clone()
		branch.pc = branch.pc.And(match)
		for _, ex := range excluded {
			branch.pc = branch.pc.And(e.itn.Negate(ex))
		}
		entry := i
		branches = append(branches, branchCase{st: branch, run: func(s *state) error {
			if !e.feasible(s.pc) {
				return nil
			}
			return runFrom(s, entry, k)
		}})
		excluded = append(excluded, match)
	}
	// No-match state: default case, or fall past the switch.
	rest := st.clone()
	for _, ex := range excluded {
		rest.pc = rest.pc.And(e.itn.Negate(ex))
	}
	branches = append(branches, branchCase{st: rest, run: func(s *state) error {
		if !e.feasible(s.pc) {
			return nil
		}
		if defaultIdx >= 0 {
			return runFrom(s, defaultIdx, k)
		}
		return k(s, ctlFallthrough)
	}})
	return e.runBranches(st, branches)
}
