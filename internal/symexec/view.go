package symexec

import (
	"privacyscope/internal/mem"
	"privacyscope/internal/minic"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
)

// IntrinsicCall carries one custom-intrinsic invocation: the evaluated
// scalar arguments, the call site, and the path condition under which the
// call executes.
type IntrinsicCall struct {
	Fun  string
	Args []sym.Expr
	Pos  minic.Pos
	PC   *solver.PathCondition
}

// IntrinsicFunc models one custom intrinsic. The returned expression is the
// call's value (nil means integer 0); an error aborts the analysis.
type IntrinsicFunc func(call IntrinsicCall) (sym.Expr, error)

// StateView is a read-only window onto one exploration state, handed to
// NoteHook and available to intrinsics via the engine. It never mutates the
// state: lookups that miss do not conjure inputs.
type StateView struct {
	e  *Engine
	st *state
}

// PC returns the state's path condition.
func (v StateView) PC() *solver.PathCondition { return v.st.pc }

// Value returns the scalar currently bound to the named variable
// (innermost frame first, then globals). It reports false for unbound
// variables and non-scalar bindings — a read through the view never
// conjures a fresh input.
func (v StateView) Value(name string) (sym.Expr, bool) {
	if len(v.st.frames) > 0 {
		if b, ok := v.st.frame().lookup(name); ok {
			return scalarLookup(v.st.store, b.region)
		}
	}
	if g := v.e.globalDecl(name); g != nil {
		return scalarLookup(v.st.store, v.e.mgr.Var("::"+g.Name, 0))
	}
	return nil, false
}

func scalarLookup(store *mem.Store, reg mem.Region) (sym.Expr, bool) {
	val, ok := store.Lookup(reg)
	if !ok {
		return nil, false
	}
	sc, isScalar := val.(mem.Scalar)
	if !isScalar {
		return nil, false
	}
	return sc.E, true
}
