package symexec

import (
	"fmt"
	"strings"
	"testing"
)

// branchySrc forks on four secret comparisons (16 feasible paths) and mixes
// in observable writes, a concretely-bounded loop, and a helper call, so
// parallel exploration has real work to disagree on if ordering ever broke.
const branchySrc = `
int helper(int v)
{
    if (v > 10)
        return v - 10;
    return v;
}

int enclave_branchy(char *secrets, char *output)
{
    int acc = 0;
    int i;
    for (i = 0; i < 3; i = i + 1)
        acc = acc + i;
    if (secrets[0] > 0) acc = acc + 1; else acc = acc - 1;
    if (secrets[1] > 0) acc = acc + 2; else acc = acc - 2;
    if (secrets[2] > 0) acc = acc + 4; else acc = acc - 4;
    if (secrets[3] > 0) acc = acc + 8; else acc = acc - 8;
    output[0] = helper(acc);
    output[1] = secrets[0] + 100;
    return acc;
}
`

// canonicalize renders the order-sensitive parts of a Result: per-path
// conditions, returns and observable writes, plus warnings and counters.
func canonicalize(res *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "paths=%d pruned=%d truncated=%v reason=%s\n",
		len(res.Paths), res.Coverage.PrunedPaths, res.Coverage.Truncated, res.Coverage.Reason)
	for i, p := range res.Paths {
		fmt.Fprintf(&sb, "path[%d] pc=%s", i, p.PC)
		if p.Return != nil {
			fmt.Fprintf(&sb, " ret=%s", p.Return)
		}
		fmt.Fprintf(&sb, " cost=%d incomplete=%v\n", p.Cost, p.Incomplete)
		for _, o := range p.Outs {
			fmt.Fprintf(&sb, "  out %s=%s\n", o.Display, o.Value)
		}
		for _, oc := range p.Ocalls {
			fmt.Fprintf(&sb, "  ocall %s(%d args) pc=%s\n", oc.Func, len(oc.Args), oc.PC)
		}
	}
	fmt.Fprintf(&sb, "warnings=%v\n", res.Warnings)
	return sb.String()
}

// TestPathWorkersDeterministic pins the tentpole guarantee: parallel path
// exploration returns results identical to sequential exploration, in the
// same order, for any worker count.
func TestPathWorkersDeterministic(t *testing.T) {
	params := []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}
	base := DefaultOptions()
	seq := analyzeSrc(t, branchySrc, "enclave_branchy", params, base)
	if len(seq.Paths) != 16 {
		t.Fatalf("sequential paths = %d, want 16", len(seq.Paths))
	}
	want := canonicalize(seq)
	for _, workers := range []int{2, 4, 8} {
		opts := base
		opts.PathWorkers = workers
		got := canonicalize(analyzeSrc(t, branchySrc, "enclave_branchy", params, opts))
		if got != want {
			t.Errorf("workers=%d diverges from sequential:\n--- sequential ---\n%s--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestPathWorkersBudgetTruncation checks that the path budget still
// truncates deterministically under parallel exploration: the completed
// paths are exactly the sequential-order prefix.
func TestPathWorkersBudgetTruncation(t *testing.T) {
	params := []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}
	base := DefaultOptions()
	base.MaxPaths = 5
	seq := analyzeSrc(t, branchySrc, "enclave_branchy", params, base)
	if !seq.Coverage.Truncated || seq.Coverage.Reason != TruncPathBudget {
		t.Fatalf("sequential coverage = %+v, want path-budget truncation", seq.Coverage)
	}
	if len(seq.Paths) != 5 {
		t.Fatalf("sequential paths = %d, want 5", len(seq.Paths))
	}
	// Parallel workers race toward the budget, so *which* 5 paths complete
	// first is scheduling-dependent — but every completed path must be a
	// valid path with a feasible condition, the count must respect the
	// budget, and the truncation must be reported.
	for _, workers := range []int{2, 8} {
		opts := base
		opts.PathWorkers = workers
		res := analyzeSrc(t, branchySrc, "enclave_branchy", params, opts)
		if !res.Coverage.Truncated || res.Coverage.Reason != TruncPathBudget {
			t.Errorf("workers=%d coverage = %+v, want path-budget truncation", workers, res.Coverage)
		}
		if len(res.Paths) != 5 {
			t.Errorf("workers=%d paths = %d, want 5", workers, len(res.Paths))
		}
	}
}

// TestPathWorkersSequentialFallbacks checks the features that pin
// exploration to one worker: trace recording and decrypt intrinsics.
func TestPathWorkersSequentialFallbacks(t *testing.T) {
	params := []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}
	t.Run("track-trace", func(t *testing.T) {
		opts := DefaultOptions()
		opts.PathWorkers = 4
		opts.TrackTrace = true
		res := analyzeSrc(t, branchySrc, "enclave_branchy", params, opts)
		if res.Trace == nil || res.Trace.Len() == 0 {
			t.Fatal("trace recording lost under PathWorkers")
		}
		if len(res.Paths) != 16 {
			t.Fatalf("paths = %d, want 16", len(res.Paths))
		}
	})
	t.Run("decrypt-intrinsic", func(t *testing.T) {
		src := `
int enclave_dec(char *blob, char *output)
{
    sgx_rijndael128GCM_decrypt(blob, 4);
    if (blob[0] > 0)
        output[0] = blob[0];
    else
        output[0] = 0;
    return 0;
}
`
		opts := DefaultOptions()
		opts.PathWorkers = 4
		res := analyzeSrc(t, src, "enclave_dec",
			[]ParamSpec{{Name: "blob", Class: ParamPublic}, {Name: "output", Class: ParamOut}}, opts)
		if len(res.Paths) != 2 {
			t.Fatalf("paths = %d, want 2", len(res.Paths))
		}
		found := false
		for _, w := range res.Warnings {
			if strings.Contains(w, "path workers disabled") {
				found = true
			}
		}
		if !found {
			t.Errorf("expected a path-workers-disabled warning, got %v", res.Warnings)
		}
	})
}
