package symexec

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"privacyscope/internal/ir"
	"privacyscope/internal/mem"
	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
	"privacyscope/internal/sym"
)

// This file implements compositional call resolution: instead of re-inlining
// a callee at every call site on every path, the engine consults a
// bottom-up-built table of per-function summaries (Options.SummaryTable).
//
// The design constraint is byte-identity with inline mode: with summaries on,
// every finding, verdict, warning and coverage counter must match what the
// inline engine produces on the same program — inline mode stays the
// differential oracle (see the summary differential test suite). That forces
// three summary classes:
//
//   - SummaryPure: the callee is statically side-effect-free (scalar integer
//     params and locals, no globals, no pointers, only transitively-pure
//     callees) and a scratch symbolic run completed on exactly one path with
//     no warnings, no conjured state and an empty path condition. Its return
//     value, abstracted over parameter slots, is replayed at call sites by
//     substituting the actual arguments through the same folding
//     constructors — producing the identical expression inlining would have,
//     at O(skeleton) cost instead of O(body × paths). The summary also
//     replays the callee's step/cost/region accounting so budgets and
//     coverage counters cross over at exactly the same point as inline mode.
//   - SummaryInline: anything outside that fragment. Call sites inline
//     exactly as before — identical by construction.
//   - SummaryHavoc: a recursive callee (inline mode would spiral to the
//     depth limit) or a statically-pure candidate whose scratch run blew the
//     summary step budget. Call sites get a fresh unconstrained result and
//     the exploration is marked truncated (TruncSummaryHavoc): a run that
//     havoc'd anything can degrade to Inconclusive but never claim Secure.
//
// Sparse mode falls out of the classification: an untainted helper's
// skeleton is small (often a constant after folding), so helpers that never
// touch secrets collapse to cheap no-op applications.

// SummaryKind classifies a function summary.
type SummaryKind uint8

// Summary kinds.
const (
	// SummaryPure replays an abstracted return value at call sites.
	SummaryPure SummaryKind = iota + 1
	// SummaryInline makes call sites inline the callee (the differential
	// oracle path, used for everything outside the pure fragment).
	SummaryInline
	// SummaryHavoc replaces the call with a fresh unconstrained value and
	// truncates coverage (recursion, over-budget callees).
	SummaryHavoc
)

func (k SummaryKind) String() string {
	switch k {
	case SummaryPure:
		return "pure"
	case SummaryInline:
		return "inline"
	case SummaryHavoc:
		return "havoc"
	}
	return "?"
}

// Summary is one function's reusable analysis result.
type Summary struct {
	// Func is the summarized function's name.
	Func string
	// Kind selects the application strategy.
	Kind SummaryKind
	// Reason says why Kind is not SummaryPure (diagnostics; surfaced in the
	// havoc warning).
	Reason string
	// NumParams is the callee's declared parameter count.
	NumParams int
	// Depth is the maximum inline-frame depth the callee's own call chain
	// needs. A pure summary only applies when the caller's frame depth plus
	// Depth stays within InlineDepth — past that, inline mode would have
	// truncated the chain, so the application falls back to inlining to
	// reproduce that behavior.
	Depth int
	// Cost, Steps and Regions replay the callee's accounting at each
	// application: path cost/state count, engine steps (loop iterations
	// included), and memory regions the inlined body would have allocated.
	Cost    int64
	Steps   int64
	Regions int64
	// Skeleton is the return value over parameter slots (SummaryPure only).
	Skeleton *sym.SumExpr
	// Ocalls and Declassifies list the OCALL sinks and declassify/decrypt
	// obligations statically reachable from the callee — the propagated
	// obligations a havoc application skips (they are warned about and
	// degrade coverage) and the checker surfaces on its span.
	Ocalls       []string
	Declassifies []string
	// AffineCoef/AffineConst record the return value as an affine
	// combination of parameter slots when one is derivable (slot index →
	// coefficient): the reusable input→output relation of the recovery
	// formula machinery, exposed for diagnostics and tests.
	AffineCoef  map[int]float64
	AffineConst float64
	HasAffine   bool
}

// SummaryTable is the read-only per-function summary map one analysis run
// shares across entry points (and, under WithParallelism, across concurrent
// per-ECALL engines — skeletons are builder-independent, so the table is
// safe to share once built).
type SummaryTable struct {
	funcs map[string]*Summary
}

// Lookup returns the named function's summary, or nil.
func (t *SummaryTable) Lookup(name string) *Summary {
	if t == nil {
		return nil
	}
	return t.funcs[name]
}

// Len reports how many functions are summarized.
func (t *SummaryTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.funcs)
}

// Summaries returns the table's entries sorted by function name.
func (t *SummaryTable) Summaries() []*Summary {
	if t == nil {
		return nil
	}
	out := make([]*Summary, 0, len(t.funcs))
	for _, s := range t.funcs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out
}

// SummaryStore is the persistence hook for computed summaries — the disk
// tier. Get returns a previously Put payload; both must be safe for
// concurrent use. diskcache.Cache satisfies it.
type SummaryStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte)
}

// SummaryBuildConfig parameterizes BuildSummaryTable.
type SummaryBuildConfig struct {
	// Store, when non-nil, persists summaries keyed on function body hash
	// (own + transitive callees) + engine fingerprint + the option slice
	// that affects summary semantics — function-granular invalidation: edit
	// one helper and only it (plus its callers) recomputes.
	Store SummaryStore
	// Fingerprint is the engine build/configuration fingerprint folded into
	// store keys (privacyscope.Fingerprint at the facade layer).
	Fingerprint string
	// Obs receives summary.* counters and the summary/build span.
	Obs obs.Observer
}

// builtinNames are the engine's natively-modeled calls; a pure function may
// not call any of them (their models conjure symbols, touch memory, or have
// entropy semantics a skeleton cannot replay).
var builtinNames = map[string]bool{
	"memcpy": true, "memset": true, "rand": true, "sgx_read_rand": true,
	"srand": true, "free": true, "malloc": true,
}

// BuildSummaryTable computes a summary for every defined function that
// appears as a call target, bottom-up in SCC order (callees before callers;
// recursive components havoc without a scratch run). The table is read-only
// after construction.
func BuildSummaryTable(ctx context.Context, file *minic.File, opts Options, bc SummaryBuildConfig) *SummaryTable {
	ob := obs.Or(bc.Obs)
	span := ob.StartSpan("summary/build")
	defer span.End()

	prog := ir.LowerMiniC(file)
	// The scratch module drops globals: a pure function cannot reference
	// them (the shape check rejects global identifiers), and stripping them
	// keeps the scratch engine's region count equal to the per-call region
	// delta an inline execution would produce.
	scratchFile := *file
	scratchFile.Globals = nil
	b := &tableBuilder{
		ctx:         ctx,
		prog:        prog,
		scratchProg: ir.LowerMiniC(&scratchFile),
		opts:        opts,
		bc:          bc,
		ob:          ob,
		table:       &SummaryTable{funcs: make(map[string]*Summary)},
		globals:     make(map[string]bool, len(file.Globals)),
		decls:       make(map[string]*minic.FuncDecl, len(file.Functions)),
	}
	for _, g := range file.Globals {
		b.globals[g.Name] = true
	}
	for _, fd := range file.Functions {
		if fd.Body != nil {
			b.decls[fd.Name] = fd
		}
	}

	// Only call targets need summaries; entry points nobody calls do not.
	called := make(map[string]bool)
	for _, fn := range prog.Funcs {
		if fn.Body == nil {
			continue
		}
		for _, callee := range fn.Calls {
			if target, ok := prog.Funcs[callee]; ok && target.Body != nil {
				called[callee] = true
			}
		}
	}

	for _, scc := range prog.CallSCCs() {
		for _, name := range scc.Funcs {
			if !called[name] {
				continue
			}
			b.table.funcs[name] = b.resolve(name, scc.Recursive)
		}
	}
	span.Annotate(obs.F("functions", fmt.Sprint(len(b.table.funcs))))
	return b.table
}

type tableBuilder struct {
	ctx         context.Context
	prog        *ir.Program
	scratchProg *ir.Program
	opts        Options
	bc          SummaryBuildConfig
	ob          obs.Observer
	table       *SummaryTable
	globals     map[string]bool
	decls       map[string]*minic.FuncDecl
	hashes      map[string]string
}

// resolve produces one function's summary, consulting the store first.
func (b *tableBuilder) resolve(name string, recursive bool) *Summary {
	key := b.storeKey(name)
	if b.bc.Store != nil {
		if payload, ok := b.bc.Store.Get(key); ok {
			if s, err := decodeSummary(payload); err == nil && s.Func == name {
				b.ob.Add("summary.cache.hits", 1)
				return s
			}
			// Corrupt or foreign payload: recompute, never trust it.
			b.ob.Add("summary.cache.undecodable", 1)
		} else {
			b.ob.Add("summary.cache.misses", 1)
		}
	}
	s := b.compute(name, recursive)
	b.ob.Add("summary.computed", 1)
	if b.bc.Store != nil {
		b.bc.Store.Put(key, encodeSummary(s))
	}
	return s
}

// compute classifies one function from scratch.
func (b *tableBuilder) compute(name string, recursive bool) *Summary {
	fn := b.prog.Funcs[name]
	s := &Summary{
		Func:      name,
		NumParams: len(fn.Params),
	}
	s.Ocalls, s.Declassifies = b.obligations(name)
	if recursive {
		s.Kind = SummaryHavoc
		s.Reason = "recursive"
		b.ob.Add("summary.havoc.recursive", 1)
		return s
	}
	if ok, reason := b.pureShape(fn); !ok {
		s.Kind = SummaryInline
		s.Reason = reason
		return s
	}
	return b.scratchRun(fn, s)
}

// obligations lists the OCALL sinks and declassify obligations statically
// reachable from the function, sorted.
func (b *tableBuilder) obligations(name string) (ocalls, declassifies []string) {
	for callee := range b.prog.ReachableCalls(name) {
		if b.opts.OCallFuncs[callee] {
			ocalls = append(ocalls, callee)
		}
		if _, ok := b.opts.DecryptFuncs[callee]; ok {
			declassifies = append(declassifies, callee)
		}
	}
	sort.Strings(ocalls)
	sort.Strings(declassifies)
	return ocalls, declassifies
}

// pureShape statically checks whether the function is inside the pure
// fragment: integer scalar params/locals/return, no globals, no pointer or
// aggregate operations, no float literals, and calls only to
// already-classified pure functions. The check is deliberately conservative
// — anything it cannot prove falls back to inlining, which is always
// byte-identical.
func (b *tableBuilder) pureShape(fn *ir.Func) (bool, string) {
	if fn.Body == nil {
		return false, "no body"
	}
	if !isIntBasic(fn.Return) {
		return false, "non-integer return type"
	}
	for _, p := range fn.Params {
		if !isIntBasic(p.Type) {
			return false, "non-integer parameter " + p.Name
		}
	}
	return b.pureOp(fn.Body)
}

func isIntBasic(t minic.Type) bool {
	basic, ok := t.(minic.Basic)
	return ok && basic.IsInteger()
}

func (b *tableBuilder) pureOp(op ir.Op) (bool, string) {
	switch v := op.(type) {
	case *ir.BlockOp:
		for _, o := range v.Ops {
			if ok, r := b.pureOp(o); !ok {
				return false, r
			}
		}
	case *ir.EmptyOp, *ir.BreakOp, *ir.ContinueOp:
	case *ir.DeclOp:
		for _, d := range v.Decls {
			if !isIntBasic(d.Type) {
				return false, "non-integer local " + d.Name
			}
			if d.Init != nil {
				if ok, r := b.pureExpr(d.Init); !ok {
					return false, r
				}
			}
		}
	case *ir.ExprOp:
		return b.pureExpr(v.X)
	case *ir.IfOp:
		if ok, r := b.pureExpr(v.Cond); !ok {
			return false, r
		}
		if ok, r := b.pureOp(v.Then); !ok {
			return false, r
		}
		if v.Else != nil {
			return b.pureOp(v.Else)
		}
	case *ir.LoopOp:
		if v.Init != nil {
			if ok, r := b.pureOp(v.Init); !ok {
				return false, r
			}
		}
		if v.Cond != nil {
			if ok, r := b.pureExpr(v.Cond); !ok {
				return false, r
			}
		}
		if v.Post != nil {
			if ok, r := b.pureExpr(v.Post); !ok {
				return false, r
			}
		}
		return b.pureOp(v.Body)
	case *ir.SwitchOp:
		if ok, r := b.pureExpr(v.Tag); !ok {
			return false, r
		}
		for _, c := range v.Cases {
			if c.Value != nil {
				if ok, r := b.pureExpr(c.Value); !ok {
					return false, r
				}
			}
			for _, o := range c.Body {
				if ok, r := b.pureOp(o); !ok {
					return false, r
				}
			}
		}
	case *ir.ReturnOp:
		if v.X != nil {
			return b.pureExpr(v.X)
		}
	default:
		// NoteOp and anything new: out of the fragment.
		return false, fmt.Sprintf("op %T outside pure fragment", op)
	}
	return true, ""
}

func (b *tableBuilder) pureExpr(e minic.Expr) (bool, string) {
	switch v := e.(type) {
	case *minic.IntLitExpr:
	case *minic.IdentExpr:
		if b.globals[v.Name] {
			return false, "references global " + v.Name
		}
	case *minic.BinExpr:
		if ok, r := b.pureExpr(v.L); !ok {
			return false, r
		}
		return b.pureExpr(v.R)
	case *minic.UnExpr:
		return b.pureExpr(v.X)
	case *minic.AssignExpr:
		if _, isIdent := v.LHS.(*minic.IdentExpr); !isIdent {
			return false, "assignment to non-scalar lvalue"
		}
		if ok, r := b.pureExpr(v.LHS); !ok {
			return false, r
		}
		return b.pureExpr(v.RHS)
	case *minic.IncDecExpr:
		return b.pureExpr(v.X)
	case *minic.CallExpr:
		if b.opts.OCallFuncs[v.Fun] || isIntrinsic(b.opts, v.Fun) || builtinNames[v.Fun] {
			return false, "calls modeled builtin/sink " + v.Fun
		}
		callee := b.table.Lookup(v.Fun)
		if callee == nil || callee.Kind != SummaryPure {
			return false, "calls non-pure function " + v.Fun
		}
		for _, a := range v.Args {
			if ok, r := b.pureExpr(a); !ok {
				return false, r
			}
		}
	default:
		// Floats, strings, pointers, arrays, members, casts, conditional
		// expressions, sizeof: all outside the fragment.
		return false, fmt.Sprintf("expression %T outside pure fragment", e)
	}
	return true, ""
}

// scratchRun executes a statically-pure candidate once, symbolically, with
// one fresh placeholder per parameter, and validates that the run really
// was pure and single-path before committing to a skeleton.
func (b *tableBuilder) scratchRun(fn *ir.Func, s *Summary) *Summary {
	inline := func(reason string) *Summary {
		s.Kind = SummaryInline
		s.Reason = reason
		s.Skeleton = nil
		return s
	}
	params := make([]ParamSpec, len(fn.Params))
	for i, p := range fn.Params {
		params[i] = ParamSpec{Name: p.Name, Class: ParamPublic}
	}
	sopts := b.opts
	sopts.Obs = nil // scratch telemetry must not pollute the run's counters
	sopts.TrackTrace = false
	sopts.NoteHook = nil
	sopts.PathWorkers = 0
	sopts.MaxPaths = 2 // one is expected; two detects a fork cheaply
	sopts.MaxSteps = b.opts.summaryBudget()
	sopts.Summaries = false // nested pure callees inline, so costs roll up
	sopts.SummaryTable = nil

	eng := NewIR(b.scratchProg, sopts)
	res, err := eng.AnalyzeFunction(context.Background(), fn.Name, params)
	if err != nil {
		return inline("scratch run failed: " + err.Error())
	}
	if res.Coverage.Truncated {
		if res.Coverage.Reason == TruncStepBudget {
			s.Kind = SummaryHavoc
			s.Reason = fmt.Sprintf("exceeds summary step budget (%d)", b.opts.summaryBudget())
			b.ob.Add("summary.havoc.budget", 1)
			return s
		}
		return inline("scratch run truncated: " + string(res.Coverage.Reason))
	}
	if len(res.Paths) != 1 {
		return inline(fmt.Sprintf("%d scratch paths", len(res.Paths)))
	}
	if res.Coverage.PrunedPaths > 0 || len(res.Warnings) > 0 {
		return inline("scratch run forked or warned")
	}
	p := res.Paths[0]
	if p.Incomplete {
		return inline("scratch path incomplete")
	}
	if len(p.Ocalls) > 0 || len(p.Outs) > 0 {
		return inline("scratch run produced observations")
	}
	if p.PC.Len() != 0 {
		return inline("scratch path condition not empty")
	}
	if p.Return == nil {
		return inline("no return value")
	}
	placeholders := res.Builder.Symbols()
	if len(placeholders) != len(fn.Params) {
		return inline("scratch run conjured state")
	}
	paramOf := make(map[int]int, len(placeholders))
	for i, ph := range placeholders {
		paramOf[ph.ID] = i
	}
	skel, aerr := sym.Abstract(p.Return, paramOf)
	if aerr != nil {
		return inline("abstraction failed: " + aerr.Error())
	}

	s.Kind = SummaryPure
	s.Skeleton = skel
	s.Cost = int64(p.Cost)
	s.Steps = int64(res.Coverage.StepsUsed)
	s.Regions = int64(res.Regions)
	s.Depth = 1
	for _, callee := range fn.Calls {
		if cs := b.table.Lookup(callee); cs != nil && cs.Kind == SummaryPure && cs.Depth+1 > s.Depth {
			s.Depth = cs.Depth + 1
		}
	}
	if a := sym.ExtractAffine(p.Return); a != nil {
		s.HasAffine = true
		s.AffineConst = a.Const
		s.AffineCoef = make(map[int]float64, len(a.Coef))
		for id, coef := range a.Coef {
			s.AffineCoef[paramOf[id]] = coef
		}
	}
	return s
}

// storeKey addresses one function's summary in the store: engine
// fingerprint, the function's own body hash plus the body hashes of every
// transitively reachable defined callee, and the options that change
// summary semantics. Editing any function in the chain changes the key —
// function-granular invalidation.
func (b *tableBuilder) storeKey(name string) string {
	if b.hashes == nil {
		b.hashes = make(map[string]string, len(b.decls))
		for fname, fd := range b.decls {
			b.hashes[fname] = funcSourceString(fd)
		}
	}
	h := sha256.New()
	frame := func(s string) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	frame("summary/v1")
	frame(b.bc.Fingerprint)
	frame(name)
	reach := make([]string, 0, 8)
	for callee := range b.prog.ReachableCalls(name) {
		if _, ok := b.hashes[callee]; ok {
			reach = append(reach, callee)
		}
	}
	sort.Strings(reach)
	for _, callee := range reach {
		frame(callee)
		frame(b.hashes[callee])
	}
	frame(fmt.Sprintf("loop=%d zero=%t externs=%t inline=%d budget=%d",
		b.opts.loopBound(), b.opts.ZeroDefaultVars, b.opts.ConservativeExterns,
		b.opts.inlineDepth(), b.opts.summaryBudget()))
	frame(strings.Join(sortedKeys(b.opts.OCallFuncs), ","))
	intr := make([]string, 0, len(b.opts.Intrinsics))
	for k := range b.opts.Intrinsics {
		intr = append(intr, k)
	}
	sort.Strings(intr)
	frame(strings.Join(intr, ","))
	dec := make([]string, 0, len(b.opts.DecryptFuncs))
	for k, idx := range b.opts.DecryptFuncs {
		dec = append(dec, fmt.Sprintf("%s=%d", k, idx))
	}
	sort.Strings(dec)
	frame(strings.Join(dec, ","))
	return "summary-" + hex.EncodeToString(h.Sum(nil))[:40]
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// funcSourceString renders a function declaration canonically for hashing.
func funcSourceString(fd *minic.FuncDecl) string {
	var sb strings.Builder
	sb.WriteString(fd.Return.String())
	sb.WriteByte(' ')
	sb.WriteString(fd.Name)
	sb.WriteByte('(')
	for i, p := range fd.Params {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.Type.String())
		sb.WriteByte(' ')
		sb.WriteString(p.Name)
	}
	sb.WriteByte(')')
	sb.WriteString(minic.StmtStringDeep(fd.Body))
	return sb.String()
}

// summariesActive reports whether this engine resolves calls through the
// summary table. Trace recording and note hooks observe per-statement
// execution of callee bodies, which summary application elides, so both
// force inline mode (mirroring setupWorkers' sequential-order rules).
func (e *Engine) summariesActive() bool {
	return e.opts.Summaries && e.opts.SummaryTable != nil &&
		!e.opts.TrackTrace && e.opts.NoteHook == nil
}

// applySummary tries to resolve a call through the summary table. It
// returns applied=false when the call must inline instead (no summary,
// inline-kind summary, unsafe arguments, depth or budget interactions);
// inlining is always semantically correct, so every bail-out here is safe.
func (e *Engine) applySummary(st *state, fn *ir.Func, args []mem.SVal) (mem.SVal, bool) {
	if !e.summariesActive() {
		return nil, false
	}
	sum := e.opts.SummaryTable.Lookup(fn.Name)
	if sum == nil {
		return nil, false
	}
	switch sum.Kind {
	case SummaryHavoc:
		msg := "summary havoc at " + fn.Name + " (" + sum.Reason + "); result unconstrained"
		if len(sum.Ocalls) > 0 {
			msg += "; skipped reachable OCALL sinks: " + strings.Join(sum.Ocalls, ", ")
		}
		if len(sum.Declassifies) > 0 {
			msg += "; skipped reachable declassify obligations: " + strings.Join(sum.Declassifies, ", ")
		}
		e.warn(st, msg)
		e.markTruncated(TruncSummaryHavoc)
		e.obs.Add("summary.havocs", 1)
		return mem.Scalar{E: e.builder.FreshPublic(fn.Name + "@havoc")}, true
	case SummaryPure:
		ret, ok := e.applyPure(st, fn, sum, args)
		if !ok {
			e.obs.Add("summary.fallbacks", 1)
		}
		return ret, ok
	default:
		// SummaryInline (or unknown): the call site inlines.
		return nil, false
	}
}

// applyPure replays a pure summary at one call site.
func (e *Engine) applyPure(st *state, fn *ir.Func, sum *Summary, args []mem.SVal) (mem.SVal, bool) {
	if len(args) != sum.NumParams || sum.Skeleton == nil {
		return nil, false
	}
	// Inline mode truncates call chains at InlineDepth; a summary must not
	// silently complete a chain inline mode would have cut.
	if len(st.frames)+sum.Depth > e.opts.inlineDepth() {
		return nil, false
	}
	argExprs := make([]sym.Expr, len(args))
	for i, a := range args {
		sc, isScalar := a.(mem.Scalar)
		if !isScalar || !sym.ArgSafe(sc.E) {
			return nil, false
		}
		argExprs[i] = sc.E
	}
	if e.stopFlag.Load() {
		// A stopped exploration must unwind through the normal step path.
		return nil, false
	}
	// Budget crossover: inline mode would spend the callee's steps one by
	// one and truncate mid-body when MaxSteps lands inside the callee. Take
	// the whole step block only if it fits; otherwise roll back and inline,
	// which reproduces the truncation at the identical step.
	newSteps := atomic.AddInt64(&e.steps, sum.Steps)
	if int(newSteps) > e.opts.maxSteps() {
		atomic.AddInt64(&e.steps, -sum.Steps)
		return nil, false
	}
	ret, err := sum.Skeleton.InstantiateIn(e.itn, argExprs)
	if err != nil {
		atomic.AddInt64(&e.steps, -sum.Steps)
		return nil, false
	}
	e.obs.Add("symexec.steps", sum.Steps)
	st.cost += int(sum.Cost)
	atomic.AddInt64(&e.states, sum.Cost)
	e.obs.Add("symexec.states", sum.Cost)
	atomic.AddInt64(&e.regionPad, sum.Regions)
	e.obs.Add("summary.applied", 1)
	return mem.Scalar{E: ret}, true
}

// Summary codec: a versioned binary record wrapping the skeleton codec.
// decodeSummary never panics; every malformed payload degrades to a
// recompute at the build layer.

const (
	summaryMagic   byte = 0xC5
	summaryVersion byte = 1

	maxSummaryStrings = 1 << 12
	maxSummaryName    = 1 << 12
	maxSummaryParams  = 1 << 12
	maxSummaryPayload = 1 << 26
)

func encodeSummary(s *Summary) []byte {
	buf := []byte{summaryMagic, summaryVersion}
	str := func(v string) {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	strs := func(v []string) {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		for _, x := range v {
			str(x)
		}
	}
	str(s.Func)
	buf = append(buf, byte(s.Kind))
	str(s.Reason)
	buf = binary.AppendUvarint(buf, uint64(s.NumParams))
	buf = binary.AppendUvarint(buf, uint64(s.Depth))
	buf = binary.AppendVarint(buf, s.Cost)
	buf = binary.AppendVarint(buf, s.Steps)
	buf = binary.AppendVarint(buf, s.Regions)
	strs(s.Ocalls)
	strs(s.Declassifies)
	if s.HasAffine {
		buf = append(buf, 1)
		idxs := make([]int, 0, len(s.AffineCoef))
		for i := range s.AffineCoef {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		buf = binary.AppendUvarint(buf, uint64(len(idxs)))
		for _, i := range idxs {
			buf = binary.AppendUvarint(buf, uint64(i))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.AffineCoef[i]))
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.AffineConst))
	} else {
		buf = append(buf, 0)
	}
	if s.Skeleton != nil {
		payload := sym.EncodeSum(s.Skeleton)
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

var errSummaryCorrupt = errors.New("symexec: corrupt summary payload")

func decodeSummary(data []byte) (*Summary, error) {
	if len(data) < 2 || len(data) > maxSummaryPayload {
		return nil, errSummaryCorrupt
	}
	if data[0] != summaryMagic || data[1] != summaryVersion {
		return nil, errSummaryCorrupt
	}
	off := 2
	u := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, errSummaryCorrupt
		}
		off += n
		return v, nil
	}
	i := func() (int64, error) {
		v, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, errSummaryCorrupt
		}
		off += n
		return v, nil
	}
	by := func() (byte, error) {
		if off >= len(data) {
			return 0, errSummaryCorrupt
		}
		b := data[off]
		off++
		return b, nil
	}
	str := func() (string, error) {
		n, err := u()
		if err != nil || n > maxSummaryName || off+int(n) > len(data) {
			return "", errSummaryCorrupt
		}
		s := string(data[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	strs := func() ([]string, error) {
		n, err := u()
		if err != nil || n > maxSummaryStrings {
			return nil, errSummaryCorrupt
		}
		var out []string
		for j := uint64(0); j < n; j++ {
			s, err := str()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	}
	f64 := func() (float64, error) {
		if off+8 > len(data) {
			return 0, errSummaryCorrupt
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		return v, nil
	}

	s := &Summary{}
	var err error
	if s.Func, err = str(); err != nil {
		return nil, err
	}
	kb, err := by()
	if err != nil {
		return nil, err
	}
	s.Kind = SummaryKind(kb)
	if s.Kind < SummaryPure || s.Kind > SummaryHavoc {
		return nil, errSummaryCorrupt
	}
	if s.Reason, err = str(); err != nil {
		return nil, err
	}
	np, err := u()
	if err != nil || np > maxSummaryParams {
		return nil, errSummaryCorrupt
	}
	s.NumParams = int(np)
	dep, err := u()
	if err != nil || dep > maxSummaryParams {
		return nil, errSummaryCorrupt
	}
	s.Depth = int(dep)
	if s.Cost, err = i(); err != nil {
		return nil, err
	}
	if s.Steps, err = i(); err != nil {
		return nil, err
	}
	if s.Regions, err = i(); err != nil {
		return nil, err
	}
	if s.Cost < 0 || s.Steps < 0 || s.Regions < 0 {
		return nil, errSummaryCorrupt
	}
	if s.Ocalls, err = strs(); err != nil {
		return nil, err
	}
	if s.Declassifies, err = strs(); err != nil {
		return nil, err
	}
	afl, err := by()
	if err != nil {
		return nil, err
	}
	switch afl {
	case 1:
		s.HasAffine = true
		n, err := u()
		if err != nil || n > maxSummaryParams {
			return nil, errSummaryCorrupt
		}
		s.AffineCoef = make(map[int]float64, n)
		for j := uint64(0); j < n; j++ {
			idx, err := u()
			if err != nil || idx > maxSummaryParams {
				return nil, errSummaryCorrupt
			}
			c, err := f64()
			if err != nil {
				return nil, err
			}
			s.AffineCoef[int(idx)] = c
		}
		if s.AffineConst, err = f64(); err != nil {
			return nil, err
		}
	case 0:
	default:
		return nil, errSummaryCorrupt
	}
	skl, err := by()
	if err != nil {
		return nil, err
	}
	switch skl {
	case 1:
		n, err := u()
		if err != nil || off+int(n) > len(data) {
			return nil, errSummaryCorrupt
		}
		skel, serr := sym.DecodeSum(data[off : off+int(n)])
		if serr != nil {
			return nil, errSummaryCorrupt
		}
		off += int(n)
		s.Skeleton = skel
	case 0:
	default:
		return nil, errSummaryCorrupt
	}
	if off != len(data) {
		return nil, errSummaryCorrupt
	}
	if s.Kind == SummaryPure && s.Skeleton == nil {
		return nil, errSummaryCorrupt
	}
	return s, nil
}
