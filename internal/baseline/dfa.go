package baseline

import (
	"fmt"
	"sort"
	"strings"

	"privacyscope/internal/minic"
	"privacyscope/internal/symexec"
)

// DFAViolation is one tainted sink found by the dataflow baseline.
type DFAViolation struct {
	Where   string
	Sources []string
}

// DFAReport is the outcome of the dataflow taint baseline.
type DFAReport struct {
	Function   string
	Violations []DFAViolation
	// Iterations is the number of fixpoint rounds.
	Iterations int
}

// Secure reports whether no tainted sink was found.
func (r *DFAReport) Secure() bool { return len(r.Violations) == 0 }

// DFATaint is a classical path-insensitive forward dataflow taint analysis
// in the AndroidLeaks [23] mould: variable-granular taint sets propagated
// through assignments to a fixpoint, with both branch sides joined and no
// tracking of control-flow (implicit) dependences. It is orders of
// magnitude cheaper than symbolic execution (§II-B) and finds explicit
// flows only.
type DFATaint struct {
	// MaxRounds bounds fixpoint iteration; 0 means 64.
	MaxRounds int
}

// NewDFATaint returns the baseline with defaults.
func NewDFATaint() *DFATaint { return &DFATaint{} }

type taintSet map[string]bool

func (t taintSet) union(o taintSet) (taintSet, bool) {
	changed := false
	for k := range o {
		if !t[k] {
			t[k] = true
			changed = true
		}
	}
	return t, changed
}

func (t taintSet) names() []string {
	out := make([]string, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type dfaState struct {
	file  *minic.File
	vars  map[string]taintSet
	outs  map[string]bool // out-param names
	sinks map[string]taintSet
	depth int
}

// Check runs the analysis on one entry point.
func (d *DFATaint) Check(file *minic.File, fn string, params []symexec.ParamSpec) (*DFAReport, error) {
	f, ok := file.Function(fn)
	if !ok || f.Body == nil {
		return nil, fmt.Errorf("dfa: no such function %s", fn)
	}
	st := &dfaState{
		file:  file,
		vars:  make(map[string]taintSet),
		outs:  make(map[string]bool),
		sinks: make(map[string]taintSet),
	}
	for _, p := range params {
		switch p.Class {
		case symexec.ParamSecret:
			st.vars[p.Name] = taintSet{p.Name: true}
		case symexec.ParamInOut:
			st.vars[p.Name] = taintSet{p.Name: true}
			st.outs[p.Name] = true
		case symexec.ParamOut:
			st.outs[p.Name] = true
		}
	}
	rounds := d.MaxRounds
	if rounds <= 0 {
		rounds = 64
	}
	report := &DFAReport{Function: fn}
	for i := 0; i < rounds; i++ {
		report.Iterations = i + 1
		if changed := st.stmt(f.Body); !changed {
			break
		}
	}
	keys := make([]string, 0, len(st.sinks))
	for k := range st.sinks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if len(st.sinks[k]) == 0 {
			continue
		}
		report.Violations = append(report.Violations, DFAViolation{
			Where:   k,
			Sources: st.sinks[k].names(),
		})
	}
	return report, nil
}

// stmt propagates taint through a statement; returns whether any taint set
// changed (for the fixpoint loop).
func (st *dfaState) stmt(s minic.Stmt) bool {
	switch v := s.(type) {
	case nil:
		return false
	case *minic.Block:
		changed := false
		for _, sub := range v.Stmts {
			changed = st.stmt(sub) || changed
		}
		return changed
	case *minic.DeclStmt:
		changed := false
		for _, dcl := range v.Decls {
			if dcl.Init != nil {
				changed = st.assign(dcl.Name, st.expr(dcl.Init)) || changed
			}
		}
		return changed
	case *minic.ExprStmt:
		return st.exprEffects(v.X)
	case *minic.IfStmt:
		// Path-insensitive: both branches apply; the condition's taint
		// is NOT propagated into the branches — the well-known blind
		// spot for implicit flows.
		changed := st.stmt(v.Then)
		if v.Else != nil {
			changed = st.stmt(v.Else) || changed
		}
		_ = st.expr(v.Cond)
		return changed
	case *minic.WhileStmt:
		_ = st.expr(v.Cond)
		return st.stmt(v.Body)
	case *minic.DoWhileStmt:
		changed := st.stmt(v.Body)
		_ = st.expr(v.Cond)
		return changed
	case *minic.SwitchStmt:
		_ = st.expr(v.Tag)
		changed := false
		for _, cs := range v.Cases {
			if cs.Value != nil {
				_ = st.expr(cs.Value)
			}
			for _, s := range cs.Body {
				changed = st.stmt(s) || changed
			}
		}
		return changed
	case *minic.ForStmt:
		changed := st.stmt(v.Init)
		if v.Cond != nil {
			_ = st.expr(v.Cond)
		}
		changed = st.stmt(v.Body) || changed
		if v.Post != nil {
			changed = st.exprEffects(v.Post) || changed
		}
		return changed
	case *minic.ReturnStmt:
		if v.X != nil {
			return st.sink("return", st.expr(v.X))
		}
		return false
	case *minic.EmptyStmt, *minic.BreakStmt, *minic.ContinueStmt:
		return false
	}
	return false
}

// exprEffects handles expressions in statement position (assignments,
// calls).
func (st *dfaState) exprEffects(e minic.Expr) bool {
	switch v := e.(type) {
	case *minic.AssignExpr:
		rhs := st.expr(v.RHS)
		if v.Op != 0 {
			rhs, _ = rhs.union(st.expr(v.LHS))
		}
		base := baseVar(v.LHS)
		changed := st.assign(base, rhs)
		if st.outs[base] {
			changed = st.sink(minic.ExprString(v.LHS), rhs) || changed
		}
		return changed
	case *minic.CallExpr:
		return st.call(v)
	case *minic.IncDecExpr:
		return false
	default:
		_ = st.expr(e)
		return false
	}
}

func (st *dfaState) assign(name string, t taintSet) bool {
	if name == "" {
		return false
	}
	cur, ok := st.vars[name]
	if !ok {
		cur = taintSet{}
		st.vars[name] = cur
	}
	_, changed := cur.union(t)
	return changed
}

func (st *dfaState) sink(where string, t taintSet) bool {
	cur, ok := st.sinks[where]
	if !ok {
		cur = taintSet{}
		st.sinks[where] = cur
	}
	_, changed := cur.union(t)
	return changed
}

// expr computes the taint of an expression: the union over referenced
// variables (variable-granular, index- and field-insensitive).
func (st *dfaState) expr(e minic.Expr) taintSet {
	out := taintSet{}
	switch v := e.(type) {
	case nil:
	case *minic.IdentExpr:
		out, _ = out.union(st.vars[v.Name])
	case *minic.IntLitExpr, *minic.FloatLitExpr, *minic.StringLitExpr:
	case *minic.BinExpr:
		out, _ = out.union(st.expr(v.L))
		out, _ = out.union(st.expr(v.R))
	case *minic.UnExpr:
		out, _ = out.union(st.expr(v.X))
	case *minic.AssignExpr:
		st.exprEffects(v)
		out, _ = out.union(st.expr(v.RHS))
	case *minic.IncDecExpr:
		out, _ = out.union(st.expr(v.X))
	case *minic.IndexExpr:
		out, _ = out.union(st.expr(v.X))
		out, _ = out.union(st.expr(v.Index))
	case *minic.MemberExpr:
		out, _ = out.union(st.expr(v.X))
	case *minic.DerefExpr:
		out, _ = out.union(st.expr(v.X))
	case *minic.AddrExpr:
		out, _ = out.union(st.expr(v.X))
	case *minic.CastExpr:
		out, _ = out.union(st.expr(v.X))
	case *minic.CondExpr:
		out, _ = out.union(st.expr(v.Then))
		out, _ = out.union(st.expr(v.Else))
		// Condition taint ignored: path-insensitive.
	case *minic.SizeofExpr:
	case *minic.CallExpr:
		st.call(v)
		for _, a := range v.Args {
			out, _ = out.union(st.expr(a))
		}
	}
	return out
}

// call models side effects of recognized calls: memcpy-style copies and
// printf sinks. User functions are treated as taint-transparent (return =
// union of args) without inlining, matching the cheap-analysis design.
func (st *dfaState) call(v *minic.CallExpr) bool {
	switch v.Fun {
	case "memcpy", "sgx_rijndael128GCM_decrypt":
		if len(v.Args) == 3 {
			src := st.expr(v.Args[1])
			dst := baseVar(v.Args[0])
			changed := st.assign(dst, src)
			if st.outs[dst] {
				changed = st.sink(dst, src) || changed
			}
			return changed
		}
	case "printf", "ocall_print":
		t := taintSet{}
		for _, a := range v.Args {
			t, _ = t.union(st.expr(a))
		}
		return st.sink(v.Fun, t)
	}
	return false
}

// baseVar finds the root variable name of an lvalue expression.
func baseVar(e minic.Expr) string {
	switch v := e.(type) {
	case *minic.IdentExpr:
		return v.Name
	case *minic.IndexExpr:
		return baseVar(v.X)
	case *minic.MemberExpr:
		return baseVar(v.X)
	case *minic.DerefExpr:
		return baseVar(v.X)
	case *minic.AddrExpr:
		return baseVar(v.X)
	case *minic.CastExpr:
		return baseVar(v.X)
	}
	return ""
}

// Summary renders the violations compactly for the detection matrix.
func (r *DFAReport) Summary() string {
	if r.Secure() {
		return "secure"
	}
	parts := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		parts[i] = v.Where + "←{" + strings.Join(v.Sources, ",") + "}"
	}
	return strings.Join(parts, "; ")
}
