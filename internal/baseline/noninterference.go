// Package baseline implements the two comparison analyses of Table VI:
//
//   - a classical noninterference checker (the property enforced by type
//     systems such as Jif and by Moat [8]): ANY dependence of a low
//     observable on ANY high input is a violation, regardless of how many
//     secrets mask each other. As the paper argues in §I and §IV, this
//     property rejects every ML training program, because the trained model
//     always depends on the private training data.
//
//   - a path-insensitive forward dataflow taint analysis (the AndroidLeaks
//     [23] family): explicit flows are tracked through assignments only, so
//     implicit flows through branch conditions are missed.
//
// Running both against PrivacyScope on a shared benchmark suite turns the
// paper's literature table into a measured detection matrix.
package baseline

import (
	"context"
	"fmt"

	"privacyscope/internal/minic"
	"privacyscope/internal/sym"
	"privacyscope/internal/symexec"
)

// NIViolation is one noninterference violation: a low-observable value that
// depends on high input at all.
type NIViolation struct {
	Where   string
	Secrets []string
}

// NIReport is the outcome of the noninterference checker.
type NIReport struct {
	Function   string
	Violations []NIViolation
}

// Secure reports whether the program satisfies noninterference.
func (r *NIReport) Secure() bool { return len(r.Violations) == 0 }

// NoninterferenceChecker flags every flow from high inputs to low outputs.
// It reuses the symbolic engine for soundness but applies the classical
// policy: taint ⊤ is just as much a violation as taint tᵢ, and a π
// containing any secret taints every observation made under it.
type NoninterferenceChecker struct {
	opts symexec.Options
}

// NewNoninterference returns the baseline checker.
func NewNoninterference(opts symexec.Options) *NoninterferenceChecker {
	return &NoninterferenceChecker{opts: opts}
}

// Check analyzes one entry point under the classical policy.
func (c *NoninterferenceChecker) Check(file *minic.File, fn string, params []symexec.ParamSpec) (*NIReport, error) {
	engine := symexec.New(file, c.opts)
	res, err := engine.AnalyzeFunction(context.Background(), fn, params)
	if err != nil {
		return nil, fmt.Errorf("noninterference %s: %w", fn, err)
	}
	report := &NIReport{Function: fn}
	seen := make(map[string]bool)
	flag := func(where string, value sym.Expr, piSecrets []string) {
		var secrets []string
		for _, s := range sym.FreeSymbols(value) {
			if s.Secret() {
				secrets = append(secrets, s.Name)
			}
		}
		secrets = append(secrets, piSecrets...)
		if len(secrets) == 0 {
			return
		}
		if seen[where] {
			return
		}
		seen[where] = true
		report.Violations = append(report.Violations, NIViolation{Where: where, Secrets: secrets})
	}
	for _, p := range res.Paths {
		// Under noninterference, observations on a secret-dependent
		// path leak through control flow even when the value itself
		// is untainted.
		var piSecrets []string
		for _, conj := range p.PC.Conjuncts() {
			for _, s := range sym.FreeSymbols(conj) {
				if s.Secret() {
					piSecrets = append(piSecrets, s.Name)
				}
			}
		}
		for _, o := range p.Outs {
			flag(o.Display, o.Value, piSecrets)
		}
		if p.Return != nil {
			flag("return", p.Return, piSecrets)
		}
		for _, oc := range p.Ocalls {
			for _, a := range oc.Args {
				flag(fmt.Sprintf("%s@%s", oc.Func, oc.Pos), a, piSecrets)
			}
		}
	}
	return report, nil
}
