package baseline

import (
	"fmt"
	"sort"

	"privacyscope/internal/minic"
	"privacyscope/internal/symexec"
)

// This file implements the third comparison point of Table VI: a
// Volpano–Smith-style security type system (the "Type System" category the
// paper cites for Jif-like approaches). Every variable carries a fixed
// security level (L or H); assignments raise the target to the join of the
// right-hand side and the program-counter label, computed to a fixpoint;
// any H value reaching a sink is a violation. The checker is flow- and
// path-insensitive and tracks the pc label, so it catches implicit flows —
// at the price of rejecting every masked aggregate and even dead code, the
// conservatism that makes noninterference-style typing unusable for ML
// enclaves (§I).

// Level is a two-point security lattice.
type Level int

// Levels.
const (
	Low Level = iota
	High
)

// String names the level.
func (l Level) String() string {
	if l == High {
		return "H"
	}
	return "L"
}

func (l Level) join(o Level) Level {
	if l == High || o == High {
		return High
	}
	return Low
}

// TSViolation is one typing failure: a sink typed H.
type TSViolation struct {
	Where string
	// ViaPC is true when the flow is implicit (the value itself types L
	// but the program counter is H).
	ViaPC bool
}

// TSReport is the outcome of the type-system baseline.
type TSReport struct {
	Function   string
	Violations []TSViolation
	// Levels is the final variable typing.
	Levels map[string]Level
}

// Secure reports whether the program types securely.
func (r *TSReport) Secure() bool { return len(r.Violations) == 0 }

// TypeSystem is the security-typing baseline.
type TypeSystem struct {
	// MaxRounds bounds the fixpoint; 0 means 64.
	MaxRounds int
}

// NewTypeSystem returns the baseline with defaults.
func NewTypeSystem() *TypeSystem { return &TypeSystem{} }

type tsState struct {
	levels map[string]Level
	outs   map[string]bool
	sinks  map[string]bool // sink → saw High
	pcHint map[minic.Stmt]Level
}

// Check types one entry point.
func (ts *TypeSystem) Check(file *minic.File, fn string, params []symexec.ParamSpec) (*TSReport, error) {
	f, ok := file.Function(fn)
	if !ok || f.Body == nil {
		return nil, fmt.Errorf("typesystem: no such function %s", fn)
	}
	st := &tsState{
		levels: make(map[string]Level),
		outs:   make(map[string]bool),
		sinks:  make(map[string]bool),
	}
	for _, p := range params {
		switch p.Class {
		case symexec.ParamSecret, symexec.ParamInOut:
			st.levels[p.Name] = High
		}
		if p.Class == symexec.ParamOut || p.Class == symexec.ParamInOut {
			st.outs[p.Name] = true
		}
	}
	rounds := ts.MaxRounds
	if rounds <= 0 {
		rounds = 64
	}
	viaPC := make(map[string]bool)
	for i := 0; i < rounds; i++ {
		if !st.stmt(f.Body, Low, viaPC) {
			break
		}
	}
	report := &TSReport{Function: fn, Levels: st.levels}
	keys := make([]string, 0, len(st.sinks))
	for k := range st.sinks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if st.sinks[k] {
			report.Violations = append(report.Violations, TSViolation{Where: k, ViaPC: viaPC[k]})
		}
	}
	return report, nil
}

// stmt types a statement under pc; returns whether any level rose.
func (st *tsState) stmt(s minic.Stmt, pc Level, viaPC map[string]bool) bool {
	switch v := s.(type) {
	case nil:
		return false
	case *minic.Block:
		changed := false
		for _, sub := range v.Stmts {
			changed = st.stmt(sub, pc, viaPC) || changed
		}
		return changed
	case *minic.DeclStmt:
		changed := false
		for _, d := range v.Decls {
			lvl := pc
			if d.Init != nil {
				lvl = lvl.join(st.expr(d.Init))
			}
			changed = st.raise(d.Name, lvl) || changed
		}
		return changed
	case *minic.ExprStmt:
		return st.exprEffects(v.X, pc, viaPC)
	case *minic.IfStmt:
		inner := pc.join(st.expr(v.Cond))
		changed := st.stmt(v.Then, inner, viaPC)
		if v.Else != nil {
			changed = st.stmt(v.Else, inner, viaPC) || changed
		}
		return changed
	case *minic.WhileStmt:
		inner := pc.join(st.expr(v.Cond))
		return st.stmt(v.Body, inner, viaPC)
	case *minic.DoWhileStmt:
		inner := pc.join(st.expr(v.Cond))
		return st.stmt(v.Body, inner, viaPC)
	case *minic.ForStmt:
		changed := st.stmt(v.Init, pc, viaPC)
		inner := pc
		if v.Cond != nil {
			inner = inner.join(st.expr(v.Cond))
		}
		if v.Post != nil {
			changed = st.exprEffects(v.Post, inner, viaPC) || changed
		}
		return st.stmt(v.Body, inner, viaPC) || changed
	case *minic.SwitchStmt:
		inner := pc.join(st.expr(v.Tag))
		changed := false
		for _, cs := range v.Cases {
			for _, sub := range cs.Body {
				changed = st.stmt(sub, inner, viaPC) || changed
			}
		}
		return changed
	case *minic.ReturnStmt:
		lvl := pc
		var valueLvl Level
		if v.X != nil {
			valueLvl = st.expr(v.X)
			lvl = lvl.join(valueLvl)
		}
		return st.sink("return", lvl, valueLvl == Low && lvl == High, viaPC)
	default:
		return false
	}
}

func (st *tsState) exprEffects(e minic.Expr, pc Level, viaPC map[string]bool) bool {
	switch v := e.(type) {
	case *minic.AssignExpr:
		rhs := st.expr(v.RHS)
		if v.Op != 0 {
			rhs = rhs.join(st.expr(v.LHS))
		}
		lvl := pc.join(rhs)
		base := baseVar(v.LHS)
		changed := st.raise(base, lvl)
		if st.outs[base] {
			changed = st.sink(minic.ExprString(v.LHS), lvl, rhs == Low && lvl == High, viaPC) || changed
		}
		return changed
	case *minic.CallExpr:
		switch v.Fun {
		case "printf", "ocall_print":
			lvl := pc
			for _, a := range v.Args {
				lvl = lvl.join(st.expr(a))
			}
			argsOnly := Low
			for _, a := range v.Args {
				argsOnly = argsOnly.join(st.expr(a))
			}
			return st.sink(v.Fun, lvl, argsOnly == Low && lvl == High, viaPC)
		case "memcpy", "sgx_rijndael128GCM_decrypt":
			if len(v.Args) == 3 {
				lvl := pc.join(st.expr(v.Args[1]))
				dst := baseVar(v.Args[0])
				changed := st.raise(dst, lvl)
				if st.outs[dst] {
					changed = st.sink(dst, lvl, false, viaPC) || changed
				}
				return changed
			}
		}
		return false
	case *minic.IncDecExpr:
		return st.raise(baseVar(v.X), pc.join(st.expr(v.X)))
	default:
		return false
	}
}

func (st *tsState) raise(name string, lvl Level) bool {
	if name == "" || lvl == Low {
		return false
	}
	if st.levels[name] == High {
		return false
	}
	st.levels[name] = High
	return true
}

func (st *tsState) sink(where string, lvl Level, implicit bool, viaPC map[string]bool) bool {
	if lvl != High {
		return false
	}
	if implicit {
		viaPC[where] = true
	}
	if st.sinks[where] {
		return false
	}
	st.sinks[where] = true
	return true
}

// expr types an expression: the join over referenced variables.
func (st *tsState) expr(e minic.Expr) Level {
	switch v := e.(type) {
	case nil:
		return Low
	case *minic.IdentExpr:
		return st.levels[v.Name]
	case *minic.IntLitExpr, *minic.FloatLitExpr, *minic.StringLitExpr:
		return Low
	case *minic.BinExpr:
		return st.expr(v.L).join(st.expr(v.R))
	case *minic.UnExpr:
		return st.expr(v.X)
	case *minic.AssignExpr:
		return st.expr(v.RHS)
	case *minic.IncDecExpr:
		return st.expr(v.X)
	case *minic.IndexExpr:
		return st.expr(v.X).join(st.expr(v.Index))
	case *minic.MemberExpr:
		return st.expr(v.X)
	case *minic.DerefExpr:
		return st.expr(v.X)
	case *minic.AddrExpr:
		return st.expr(v.X)
	case *minic.CastExpr:
		return st.expr(v.X)
	case *minic.CondExpr:
		return st.expr(v.Cond).join(st.expr(v.Then)).join(st.expr(v.Else))
	case *minic.SizeofExpr:
		return Low
	case *minic.CallExpr:
		lvl := Low
		for _, a := range v.Args {
			lvl = lvl.join(st.expr(a))
		}
		return lvl
	default:
		return Low
	}
}
