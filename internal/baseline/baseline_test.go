package baseline

import (
	"context"
	"testing"

	"privacyscope/internal/core"
	"privacyscope/internal/minic"
	"privacyscope/internal/symexec"
)

func secretOutParams() []symexec.ParamSpec {
	return []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
}

// suite holds the shared leak-benchmark programs behind the Table VI
// detection matrix.
var suite = map[string]string{
	// Explicit single-secret leak: everyone should catch it except pure
	// noninterference-on-ML reasoning (which also flags it).
	"explicit": `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + 4;
    return 0;
}`,
	// Implicit leak via branch: DFA must miss it, PrivacyScope and the
	// noninterference checker must catch it.
	"implicit": `
int f(int *secrets, int *output) {
    if (secrets[0] == 19) { output[0] = 0; }
    else { output[0] = 1; }
    return 0;
}`,
	// Masked multi-secret aggregate (the ML-model shape): PrivacyScope
	// accepts, noninterference rejects, DFA rejects (it cannot tell
	// masking from leaking).
	"masked": `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + secrets[1] + secrets[2];
    return 0;
}`,
	// Clean program: nobody flags it.
	"clean": `
int f(int *secrets, int *output) {
    output[0] = 42;
    return 0;
}`,
}

func TestNoninterferenceExplicit(t *testing.T) {
	file := minic.MustParse(suite["explicit"])
	r, err := NewNoninterference(symexec.DefaultOptions()).Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Secure() {
		t.Error("explicit leak must violate noninterference")
	}
}

func TestNoninterferenceImplicit(t *testing.T) {
	file := minic.MustParse(suite["implicit"])
	r, err := NewNoninterference(symexec.DefaultOptions()).Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Secure() {
		t.Error("implicit flow must violate noninterference")
	}
}

func TestNoninterferenceRejectsMaskedML(t *testing.T) {
	// The paper's core motivation: the trained model depends on the
	// data, so noninterference ALWAYS fires on ML aggregates even when
	// nonreversibility holds.
	file := minic.MustParse(suite["masked"])
	ni, err := NewNoninterference(symexec.DefaultOptions()).Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if ni.Secure() {
		t.Error("noninterference must reject the masked aggregate")
	}
	ps, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Secure() {
		t.Errorf("PrivacyScope must accept the masked aggregate: %+v", ps.Findings)
	}
}

func TestNoninterferenceClean(t *testing.T) {
	file := minic.MustParse(suite["clean"])
	r, err := NewNoninterference(symexec.DefaultOptions()).Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Secure() {
		t.Errorf("clean program flagged: %+v", r.Violations)
	}
}

func TestDFACatchesExplicit(t *testing.T) {
	file := minic.MustParse(suite["explicit"])
	r, err := NewDFATaint().Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Secure() {
		t.Fatal("DFA must catch the explicit leak")
	}
	v := r.Violations[0]
	if v.Where != "output[0]" || len(v.Sources) != 1 || v.Sources[0] != "secrets" {
		t.Errorf("violation = %+v", v)
	}
	if r.Summary() == "secure" {
		t.Error("summary wrong")
	}
}

func TestDFAMissesImplicit(t *testing.T) {
	// The blind spot that motivates symbolic execution (§II-B): path
	// insensitivity hides the branch dependence.
	file := minic.MustParse(suite["implicit"])
	r, err := NewDFATaint().Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Secure() {
		t.Errorf("DFA unexpectedly caught the implicit leak: %+v", r.Violations)
	}
	// PrivacyScope catches it.
	ps, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Implicit()) == 0 {
		t.Error("PrivacyScope must catch the implicit leak")
	}
}

func TestDFAFlagsMaskedAggregate(t *testing.T) {
	// Variable-granular taint cannot distinguish masking: it reports the
	// aggregate, producing the false positive PrivacyScope avoids.
	file := minic.MustParse(suite["masked"])
	r, err := NewDFATaint().Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Secure() {
		t.Error("DFA flags any tainted sink, including masked ones")
	}
}

func TestDFAClean(t *testing.T) {
	file := minic.MustParse(suite["clean"])
	r, err := NewDFATaint().Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Secure() {
		t.Errorf("clean program flagged: %+v", r.Violations)
	}
	if r.Summary() != "secure" {
		t.Error("summary wrong")
	}
}

func TestDFALoopsReachFixpoint(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int a = 0;
    int b = 0;
    int c = 0;
    for (int i = 0; i < 10; i++) {
        c = b;
        b = a;
        a = secrets[0];
    }
    output[0] = c;
    return 0;
}
`
	file := minic.MustParse(src)
	r, err := NewDFATaint().Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	// Taint needs three rounds to flow a→b→c; the fixpoint must find it.
	if r.Secure() {
		t.Error("transitive loop taint missed — fixpoint broken")
	}
	if r.Iterations < 3 {
		t.Errorf("iterations = %d, want ≥ 3", r.Iterations)
	}
}

func TestDFAThroughMemcpyAndPrintf(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int tmp[4];
    memcpy(tmp, secrets, 4);
    printf("%d", tmp[0]);
    return 0;
}
`
	file := minic.MustParse(src)
	r, err := NewDFATaint().Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Secure() {
		t.Error("taint through memcpy to printf missed")
	}
}

func TestDFAReturnSink(t *testing.T) {
	src := `int f(int *secrets) { return secrets[0]; }`
	file := minic.MustParse(src)
	r, err := NewDFATaint().Check(file, "f", []symexec.ParamSpec{{Name: "secrets", Class: symexec.ParamSecret}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Secure() || r.Violations[0].Where != "return" {
		t.Errorf("violations = %+v", r.Violations)
	}
}

func TestDFAUnknownFunction(t *testing.T) {
	file := minic.MustParse("int f(void) { return 0; }")
	if _, err := NewDFATaint().Check(file, "g", nil); err == nil {
		t.Error("expected error")
	}
	if _, err := NewNoninterference(symexec.DefaultOptions()).Check(file, "g", nil); err == nil {
		t.Error("expected error")
	}
}

// TestTableVIDetectionMatrix pins the full detection matrix of Table VI on
// the shared suite: rows are analyses, columns are leak classes.
func TestTableVIDetectionMatrix(t *testing.T) {
	type verdicts struct{ explicit, implicit, masked, clean bool } // true = flagged
	want := map[string]verdicts{
		"privacyscope":    {explicit: true, implicit: true, masked: false, clean: false},
		"noninterference": {explicit: true, implicit: true, masked: true, clean: false},
		"dfa":             {explicit: true, implicit: false, masked: true, clean: false},
		"typesystem":      {explicit: true, implicit: true, masked: true, clean: false},
	}
	got := map[string]verdicts{}
	run := func(name string) (bool, bool, bool, bool) {
		flag := func(caseName string) bool {
			file := minic.MustParse(suite[caseName])
			switch name {
			case "privacyscope":
				r, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), file, "f", secretOutParams())
				if err != nil {
					t.Fatal(err)
				}
				return !r.Secure()
			case "noninterference":
				r, err := NewNoninterference(symexec.DefaultOptions()).Check(file, "f", secretOutParams())
				if err != nil {
					t.Fatal(err)
				}
				return !r.Secure()
			case "typesystem":
				r, err := NewTypeSystem().Check(file, "f", secretOutParams())
				if err != nil {
					t.Fatal(err)
				}
				return !r.Secure()
			default:
				r, err := NewDFATaint().Check(file, "f", secretOutParams())
				if err != nil {
					t.Fatal(err)
				}
				return !r.Secure()
			}
		}
		return flag("explicit"), flag("implicit"), flag("masked"), flag("clean")
	}
	for name := range want {
		e, i, m, cl := run(name)
		got[name] = verdicts{explicit: e, implicit: i, masked: m, clean: cl}
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s matrix = %+v, want %+v", name, got[name], w)
		}
	}
}

func TestTypeSystemExplicitAndImplicit(t *testing.T) {
	for _, name := range []string{"explicit", "implicit"} {
		file := minic.MustParse(suite[name])
		r, err := NewTypeSystem().Check(file, "f", secretOutParams())
		if err != nil {
			t.Fatal(err)
		}
		if r.Secure() {
			t.Errorf("%s: type system must reject", name)
		}
	}
	// The implicit case is flagged *via the pc label*.
	file := minic.MustParse(suite["implicit"])
	r, _ := NewTypeSystem().Check(file, "f", secretOutParams())
	var viaPC bool
	for _, v := range r.Violations {
		if v.ViaPC {
			viaPC = true
		}
	}
	if !viaPC {
		t.Errorf("implicit violation should be marked ViaPC: %+v", r.Violations)
	}
}

func TestTypeSystemRejectsMaskedAndAcceptsClean(t *testing.T) {
	masked := minic.MustParse(suite["masked"])
	r, err := NewTypeSystem().Check(masked, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Secure() {
		t.Error("masked aggregate must fail typing (the conservatism PrivacyScope avoids)")
	}
	clean := minic.MustParse(suite["clean"])
	r, err = NewTypeSystem().Check(clean, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Secure() {
		t.Errorf("clean program failed typing: %+v", r.Violations)
	}
}

func TestTypeSystemRejectsDeadHighBranch(t *testing.T) {
	// Flow-insensitivity: even a dead branch under a high guard is
	// rejected — strictly more conservative than the semantic
	// noninterference checker.
	src := `
int f(int *secrets, int *output) {
    if (0) {
        if (secrets[0] > 0) { output[0] = 1; }
    }
    output[0] = 2;
    return 0;
}
`
	file := minic.MustParse(src)
	ts, err := NewTypeSystem().Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if ts.Secure() {
		t.Error("type system must reject the dead high-guard write")
	}
	ni, err := NewNoninterference(symexec.DefaultOptions()).Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if !ni.Secure() {
		t.Errorf("semantic noninterference must accept (branch is dead): %+v", ni.Violations)
	}
}

func TestTypeSystemLevelsFixpoint(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int a = 0;
    int b = 0;
    int c = 0;
    for (int i = 0; i < 4; i++) {
        c = b;
        b = a;
        a = secrets[0];
    }
    output[0] = c;
    return 0;
}
`
	file := minic.MustParse(src)
	r, err := NewTypeSystem().Check(file, "f", secretOutParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Secure() {
		t.Error("transitive high flow missed — fixpoint broken")
	}
	if r.Levels["c"] != High {
		t.Errorf("level(c) = %v, want H", r.Levels["c"])
	}
	if Low.String() != "L" || High.String() != "H" {
		t.Error("Level strings wrong")
	}
}

func TestTypeSystemUnknownFunction(t *testing.T) {
	file := minic.MustParse("int f(void) { return 0; }")
	if _, err := NewTypeSystem().Check(file, "g", nil); err == nil {
		t.Error("expected error")
	}
}

// kitchenSink exercises every statement and expression node the baseline
// walkers handle, so changes to the AST surface keep the baselines honest.
const kitchenSink = `
struct P { int v; };
int helper(int x) { return x; }
int f(int *secrets, int *output, int n) {
    int a = secrets[0];
    int b = -a + ~n + !a;
    float c = (float)b;
    struct P p;
    p.v = a;
    int *q = &a;
    *q = *q + 1;
    b += p.v;
    b++;
    int t = n > 0 ? a : b;
    int z = sizeof(int) + sizeof t;
    do { z--; } while (z > 0);
    switch (n) {
    case 1:
        b = helper(a);
        break;
    default:
        b = 0;
    }
    while (n > 100) { n--; }
    for (int i = 0; i < 2; i++) { b ^= i; }
    memcpy(output, secrets, 1);
    printf("%d", t);
    output[0] = b | (a & 3);
    return b << 1;
}
`

func kitchenParams() []symexec.ParamSpec {
	return []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
		{Name: "n", Class: symexec.ParamPublic},
	}
}

func TestDFAKitchenSink(t *testing.T) {
	file := minic.MustParse(kitchenSink)
	r, err := NewDFATaint().Check(file, "f", kitchenParams())
	if err != nil {
		t.Fatal(err)
	}
	// a (← secrets) flows into b, printf, output and return.
	if r.Secure() {
		t.Fatal("kitchen sink must be flagged")
	}
	wheres := map[string]bool{}
	for _, v := range r.Violations {
		wheres[v.Where] = true
	}
	for _, want := range []string{"output[0]", "return", "printf"} {
		if !wheres[want] {
			t.Errorf("missing violation at %s: %v", want, r.Violations)
		}
	}
}

func TestTypeSystemKitchenSink(t *testing.T) {
	file := minic.MustParse(kitchenSink)
	r, err := NewTypeSystem().Check(file, "f", kitchenParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Secure() {
		t.Fatal("kitchen sink must fail typing")
	}
	if r.Levels["a"] != High || r.Levels["b"] != High {
		t.Errorf("levels = %v", r.Levels)
	}
}
