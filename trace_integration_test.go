package privacyscope

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// branchyModule builds an n-fork module so WithPathWorkers actually
// offloads branches to pool goroutines.
func branchyModule(n int) (c, edl string) {
	var sb strings.Builder
	sb.WriteString("int fanout(char *secrets, char *output)\n{\n    int acc = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "    if (secrets[%d] > 0) acc = acc + 1; else acc = acc - 1;\n", i)
	}
	sb.WriteString("    output[0] = 7;\n    return 0;\n}\n")
	return sb.String(), `
enclave {
    trusted {
        public int fanout([in] char *secrets, [out] char *output);
    };
};
`
}

func countSpans(spans []*TraceSpan, name string) int {
	n := 0
	for _, s := range spans {
		if s.Name == name {
			n++
		}
		n += countSpans(s.Spans, name)
	}
	return n
}

// TestTracerUnderPathWorkers is the ISSUE's race-coverage satellite: a
// Tracer attached through the facade with WithPathWorkers(4) — forked
// branches start spans on one goroutine and end them on another — must
// keep parent/child links consistent. Run under -race in tier 1.5.
func TestTracerUnderPathWorkers(t *testing.T) {
	cSrc, edlSrc := branchyModule(10)
	m := NewMetrics()
	tr := NewTracer()
	rep, err := AnalyzeEnclave(cSrc, edlSrc,
		WithObserver(MultiObserver(m, tr)), WithPathWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reports) != 1 {
		t.Fatalf("reports = %d", len(rep.Reports))
	}

	snap := tr.Snapshot()
	if snap.DroppedSpans != 0 {
		t.Fatalf("default cap dropped %d spans on a small module", snap.DroppedSpans)
	}
	// Exactly one check root with its engine child — fork workers must not
	// detach or duplicate the phase structure.
	if n := countSpans(snap.Spans, "check"); n != 1 {
		t.Fatalf("check spans = %d, want 1", n)
	}
	var check *TraceSpan
	for _, s := range snap.Spans {
		if s.Name == "check" {
			check = s
		}
	}
	if check == nil || countSpans(check.Spans, "symexec") != 1 {
		t.Fatalf("check/symexec not nested exactly once: %+v", snap.Spans)
	}
	// The offloaded branches recorded worker spans (started and ended on
	// pool goroutines); they are roots — the engine starts them cold.
	if m.Counter("symexec.workers.spawned") > 0 &&
		countSpans(snap.Spans, "symexec/worker") == 0 {
		t.Fatalf("workers spawned but no symexec/worker spans recorded")
	}
	// Metrics and Tracer observed the same completions for the span names
	// both track.
	ms := m.Snapshot()
	if int(ms.Spans["check"].Count) != 1 {
		t.Fatalf("metrics check count = %d", ms.Spans["check"].Count)
	}

	// The whole snapshot must round-trip as JSON (it embeds in envelopes).
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
}

// TestTracerCapUnderPathWorkers: a tiny trace buffer under concurrent
// exploration degrades to counted drops — never an error, never a missing
// analysis result.
func TestTracerCapUnderPathWorkers(t *testing.T) {
	cSrc, edlSrc := branchyModule(10)
	tr := NewTracer(WithTraceCap(3))
	rep, err := AnalyzeEnclave(cSrc, edlSrc,
		WithObserver(tr), WithPathWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict() == VerdictError {
		t.Fatalf("analysis degraded to error under trace cap")
	}
	snap := tr.Snapshot()
	if len(snap.Spans) > 3 {
		t.Fatalf("recorded %d spans past cap 3", len(snap.Spans))
	}
	if snap.DroppedSpans == 0 {
		t.Fatalf("expected counted drops past the cap")
	}
}

// TestMetricsOnlyHotPathAllocationFree pins the acceptance criterion that
// tracing's existence adds no allocations to a Metrics-only run's statement
// loop: the engine's per-statement observer calls (counter bumps on warm
// counters, distribution samples) stay allocation-free, with and without a
// no-op-collapsing MultiObserver in front.
func TestMetricsOnlyHotPathAllocationFree(t *testing.T) {
	m := NewMetrics()
	m.Add("symexec.steps", 1) // warm the counter cell
	m.Observe("symexec.path.depth", 1)
	direct := testing.AllocsPerRun(200, func() {
		m.Add("symexec.steps", 1)
	})
	if direct != 0 {
		t.Errorf("warm Metrics.Add allocates %v per call", direct)
	}
	ob := MultiObserver(m) // collapses to passthrough: the Metrics-only run
	through := testing.AllocsPerRun(200, func() {
		ob.Add("symexec.steps", 1)
	})
	if through != 0 {
		t.Errorf("MultiObserver passthrough Add allocates %v per call", through)
	}
	tr := NewTracer()
	fan := MultiObserver(m, tr)
	fanned := testing.AllocsPerRun(200, func() {
		fan.Add("symexec.steps", 1) // Tracer.Add is a deliberate no-op
	})
	if fanned != 0 {
		t.Errorf("Multi(Metrics,Tracer) Add allocates %v per call", fanned)
	}
}
