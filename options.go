package privacyscope

import "encoding/json"

// AnalysisOptions is the declarative, JSON-marshalable form of the facade's
// functional options. The privacyscoped HTTP API accepts it as the request
// "options" object, the batch driver (internal/batch) carries it per
// project run, and both fold its canonical JSON into their cache keys — so
// one struct is the single source of truth for "what can change an
// analysis result besides the sources".
//
// Every field MUST participate in JSON marshaling (no `json:"-"`): cache
// keys hash KeyJSON, and a field that does not serialize would let two
// different analyses share a cache entry. The cache-key soundness property
// test (internal/batch) enumerates the fields by reflection and fails when
// a newly added field does not change the key.
type AnalysisOptions struct {
	LoopBound           int  `json:"loopBound,omitempty"`
	MaxPaths            int  `json:"maxPaths,omitempty"`
	MaxSteps            int  `json:"maxSteps,omitempty"`
	DeadlineMs          int  `json:"deadlineMs,omitempty"`
	PathWorkers         int  `json:"pathWorkers,omitempty"`
	NoWitness           bool `json:"noWitness,omitempty"`
	NoImplicit          bool `json:"noImplicit,omitempty"`
	Timing              bool `json:"timing,omitempty"`
	Probabilistic       bool `json:"probabilistic,omitempty"`
	ConservativeExterns bool `json:"conservativeExterns,omitempty"`
	Summaries           bool `json:"summaries,omitempty"`
	// NoIntern disables expression hash-consing (the -intern flag,
	// default on). It cannot change findings — the intern-smoke gate pins
	// byte identity — but it participates in cache keys like every other
	// field; conservatively splitting the cache is sound, sharing on an
	// undeclared knob would not be.
	NoIntern    bool     `json:"noIntern,omitempty"`
	KnownInputs []string `json:"knownInputs,omitempty"`
	// Detectors replaces the detector selection (the -detectors flag);
	// empty keeps the defaults. Participates in every cache key like any
	// other field: two runs with different detector sets produce different
	// reports and must never share an entry.
	Detectors []string `json:"detectors,omitempty"`
}

// FacadeOptions converts the declarative knobs into the functional options
// AnalyzeEnclave takes. DeadlineMs is excluded on purpose: a wall-clock
// budget is context plumbing, and both the daemon and the batch driver
// apply it to the analysis context (so expiry degrades the whole module
// fail-soft) rather than per entry point.
func (o AnalysisOptions) FacadeOptions() []Option {
	var opts []Option
	if o.LoopBound > 0 {
		opts = append(opts, WithLoopBound(o.LoopBound))
	}
	if o.MaxPaths > 0 {
		opts = append(opts, WithMaxPaths(o.MaxPaths))
	}
	if o.MaxSteps > 0 {
		opts = append(opts, WithMaxSteps(o.MaxSteps))
	}
	if o.PathWorkers > 1 {
		opts = append(opts, WithPathWorkers(o.PathWorkers))
	}
	if o.NoWitness {
		opts = append(opts, WithoutWitnessReplay())
	}
	if o.NoImplicit {
		opts = append(opts, WithoutImplicitCheck())
	}
	if o.Timing {
		opts = append(opts, WithTimingCheck())
	}
	if o.Probabilistic {
		opts = append(opts, WithProbabilisticCheck())
	}
	if o.ConservativeExterns {
		opts = append(opts, WithConservativeExterns())
	}
	if o.Summaries {
		opts = append(opts, WithSummaries())
	}
	if o.NoIntern {
		opts = append(opts, WithInterning(false))
	}
	if len(o.KnownInputs) > 0 {
		opts = append(opts, WithKnownInputs(o.KnownInputs...))
	}
	if len(o.Detectors) > 0 {
		opts = append(opts, WithDetectors(o.Detectors...))
	}
	return opts
}

// KeyJSON is the canonical serialization cache keys hash. It is plain
// json.Marshal today; having a named chokepoint means a future field with
// special equality semantics changes one place, not every keyer.
func (o AnalysisOptions) KeyJSON() string {
	b, _ := json.Marshal(o)
	return string(b)
}

// ParseVerdict inverts Verdict.String. The second return is false for
// strings no verdict renders to (the Verdict is then VerdictError, the
// conservative reading of an unintelligible result).
func ParseVerdict(s string) (Verdict, bool) {
	for _, v := range []Verdict{VerdictSecure, VerdictInconclusive, VerdictError, VerdictFindings} {
		if v.String() == s {
			return v, true
		}
	}
	return VerdictError, false
}
