package privacyscope

import (
	"testing"

	"privacyscope/internal/priml"
)

// These tests are the cross-stack differential suite: the same program
// expressed once in PRIML (§V) and once in MiniC (§VI) must get the same
// verdict and the same leak classification from both front ends, now that
// both lower to the shared analysis IR and run the shared engine + Alg. 1
// kernel. Message wording differs by design (each front end renders its own
// report format); what must agree is the structure — secure or not, which
// kinds of leaks, and whether the explicit leak carries an exact inversion.

func analyzePRIMLSrc(t *testing.T, src string) *priml.Analysis {
	t.Helper()
	res, err := AnalyzePRIML(src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func analyzeCSrc(t *testing.T, src, fn string, opts ...Option) *Report {
	t.Helper()
	rep, err := AnalyzeFunction(src, fn, []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func kinds(rep *Report) map[string]int {
	out := map[string]int{}
	for _, f := range rep.Findings {
		out[f.Kind.String()]++
	}
	return out
}

func primlKinds(res *priml.Analysis) map[string]int {
	out := map[string]int{}
	for _, f := range res.Findings {
		out[f.Kind.String()]++
	}
	return out
}

// TestDifferentialSectionIVInsecure: the paper's §IV example l := h1 + 4 is
// insecure in both stacks — the observed value is invertible to the secret.
func TestDifferentialSectionIVInsecure(t *testing.T) {
	p := analyzePRIMLSrc(t, `l := get_secret(secret) + 4;
declassify(l)`)
	c := analyzeCSrc(t, `
int leak(char *secrets, char *output)
{
    output[0] = secrets[0] + 4;
    return 0;
}
`, "leak")

	if p.Secure() || c.Secure() {
		t.Fatalf("verdicts diverge or wrong: priml secure=%v, minic secure=%v (want both insecure)",
			p.Secure(), c.Secure())
	}
	if !p.HasExplicit() {
		t.Errorf("priml findings = %+v, want explicit", p.Findings)
	}
	ck := kinds(c)
	if ck["explicit"] == 0 {
		t.Errorf("minic kinds = %v, want explicit", ck)
	}
	// Both inversions must be exact: the +4 offset is recoverable.
	if p.Findings[0].Inversion == nil || !p.Findings[0].Inversion.Exact {
		t.Errorf("priml inversion = %+v, want exact", p.Findings[0].Inversion)
	}
	for _, f := range c.Findings {
		if f.Kind.String() == "explicit" && (f.Inversion == nil || !f.Inversion.Exact) {
			t.Errorf("minic inversion = %+v, want exact", f.Inversion)
		}
	}
}

// TestDifferentialSectionIVSecure: l := h1 + 4 + h2 is secure in both
// stacks — two independent secrets mask each other (⊤ label).
func TestDifferentialSectionIVSecure(t *testing.T) {
	p := analyzePRIMLSrc(t, `h1 := get_secret(secret);
h2 := get_secret(secret);
l := h1 + 4 + h2;
declassify(l)`)
	c := analyzeCSrc(t, `
int masked(char *secrets, char *output)
{
    output[0] = secrets[0] + 4 + secrets[1];
    return 0;
}
`, "masked")

	if !p.Secure() || !c.Secure() {
		t.Errorf("verdicts diverge: priml secure=%v findings=%+v, minic secure=%v findings=%+v",
			p.Secure(), p.Findings, c.Secure(), c.Findings)
	}
}

// TestDifferentialExample1: the Table II program (one ⊤-masked declassify,
// one single-tag declassify) finds exactly one explicit leak with a
// scale-2 exact inversion in both stacks.
func TestDifferentialExample1(t *testing.T) {
	p := analyzePRIMLSrc(t, `h1 := 2 * get_secret(secret);
h2 := 3 * get_secret(secret);
x := h1 + h2;
declassify(x);
declassify(h1)`)
	c := analyzeCSrc(t, `
int example1(char *secrets, char *output)
{
    int h1 = 2 * secrets[0];
    int h2 = 3 * secrets[1];
    int x = h1 + h2;
    output[0] = x;
    output[1] = h1;
    return 0;
}
`, "example1")

	pk, ck := primlKinds(p), kinds(c)
	if pk["explicit"] != 1 || len(p.Findings) != 1 {
		t.Fatalf("priml kinds = %v (findings %+v), want exactly one explicit", pk, p.Findings)
	}
	if ck["explicit"] != 1 || len(c.Findings) != 1 {
		t.Fatalf("minic kinds = %v (findings %+v), want exactly one explicit", ck, c.Findings)
	}
	pInv, cInv := p.Findings[0].Inversion, c.Findings[0].Inversion
	if pInv == nil || cInv == nil || !pInv.Exact || !cInv.Exact {
		t.Fatalf("inversions: priml=%+v minic=%+v, want both exact", pInv, cInv)
	}
	if pInv.Scale != cInv.Scale || pInv.Offset != cInv.Offset {
		t.Errorf("inversion parameters diverge: priml scale=%v offset=%v, minic scale=%v offset=%v",
			pInv.Scale, pInv.Offset, cInv.Scale, cInv.Offset)
	}
}

// TestDifferentialExample2 is the Table III program: branching on a secret
// and revealing different values per branch is an implicit leak in both
// stacks. Two variants: a branch condition feasible on both sides under the
// default options of both stacks, and the paper's integer-infeasible
// condition with pruning disabled on the MiniC side to match PRIML's
// unconditional PS-TCOND/PS-FCOND forking.
func TestDifferentialExample2(t *testing.T) {
	t.Run("feasible-branch", func(t *testing.T) {
		p := analyzePRIMLSrc(t, `h := 2 * get_secret(secret);
if h - 5 == 15 then declassify(0) else declassify(1)`)
		c := analyzeCSrc(t, `
int example2(char *secrets, char *output)
{
    int h = 2 * secrets[0];
    if (h - 5 == 15)
        output[0] = 0;
    else
        output[0] = 1;
    return 0;
}
`, "example2")
		pk, ck := primlKinds(p), kinds(c)
		if pk["implicit"] != 1 || pk["explicit"] != 0 {
			t.Errorf("priml kinds = %v, want one implicit", pk)
		}
		if ck["implicit"] == 0 || ck["explicit"] != 0 {
			t.Errorf("minic kinds = %v, want implicit only", ck)
		}
	})
	t.Run("paper-infeasible-branch", func(t *testing.T) {
		p := analyzePRIMLSrc(t, `h := 2 * get_secret(secret);
if h - 5 == 14 then declassify(0) else declassify(1)`)
		c := analyzeCSrc(t, `
int example2(char *secrets, char *output)
{
    int h = 2 * secrets[0];
    if (h - 5 == 14)
        output[0] = 0;
    else
        output[0] = 1;
    return 0;
}
`, "example2", WithoutPruning())
		pk, ck := primlKinds(p), kinds(c)
		if pk["implicit"] != 1 {
			t.Errorf("priml kinds = %v, want one implicit", pk)
		}
		if ck["implicit"] == 0 {
			t.Errorf("minic kinds = %v, want implicit", ck)
		}
	})
}
