package privacyscope

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"privacyscope/internal/mlsuite"
)

// TestWithObserverOnRecommender runs the §VI-D-1 case study with a Metrics
// observer attached through the public facade and checks that every
// pipeline layer reported in.
func TestWithObserverOnRecommender(t *testing.T) {
	m := NewMetrics()
	rep, err := AnalyzeEnclave(mlsuite.RecommenderC, mlsuite.RecommenderEDL, WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Secure() {
		t.Fatal("Recommender must have violations")
	}
	for _, counter := range []string{
		"symexec.paths.completed", // engine
		"symexec.steps",
		"symexec.states",
		"solver.queries",       // solver
		"taint.joins",          // lattice
		"core.witness.replays", // checker
		"parse.functions",      // facade
	} {
		if m.Counter(counter) == 0 {
			t.Errorf("counter %q is zero after a full analysis", counter)
		}
	}
	snap := m.Snapshot()
	for _, span := range []string{"parse", "check", "check/symexec", "check/explicit"} {
		if s, ok := snap.Spans[span]; !ok || s.Count == 0 {
			t.Errorf("span %q missing or empty", span)
		}
	}
	if snap.Counters["core.findings.explicit"] == 0 {
		t.Error("no explicit findings counted despite an insecure module")
	}
}

// TestObserverUnderParallelism asserts the shared Metrics observer survives
// concurrent per-ECALL analyses (run under -race in tier 1.5).
func TestObserverUnderParallelism(t *testing.T) {
	m := NewMetrics()
	seq, err := AnalyzeEnclave(mlsuite.RecommenderC, mlsuite.RecommenderEDL, WithObserver(NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	par, err := AnalyzeEnclave(mlsuite.RecommenderC, mlsuite.RecommenderEDL,
		WithObserver(m), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if seq.TotalFindings() != par.TotalFindings() {
		t.Errorf("findings differ: sequential %d, parallel %d",
			seq.TotalFindings(), par.TotalFindings())
	}
	if m.Counter("symexec.paths.completed") == 0 {
		t.Error("no paths counted under parallel analysis")
	}
}

// TestEventStreamThroughFacade checks WithEventWriter delivers parseable
// JSON event lines via the public API.
func TestEventStreamThroughFacade(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetrics(WithEventWriter(&buf))
	if _, err := AnalyzeEnclave(mlsuite.RecommenderC, mlsuite.RecommenderEDL, WithObserver(m)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no events emitted")
	}
	var sawCheckDone bool
	for _, line := range lines {
		var ev struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if ev.Name == "check.done" {
			sawCheckDone = true
		}
	}
	if !sawCheckDone {
		t.Error("no check.done event in the stream")
	}
}
